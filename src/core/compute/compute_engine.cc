#include "core/compute/compute_engine.h"

#include "core/compute/sproc.h"
#include "hw/calibration.h"

namespace dpdpu::ce {

ComputeEngine::ComputeEngine(hw::Server* server, KernelRegistry registry,
                             ComputeEngineOptions options)
    : server_(server),
      registry_(std::move(registry)),
      options_(options),
      placement_(server) {
  sproc_context_ = std::make_unique<SprocContext>(this);
  for (const auto& aspec : server->spec().dpu.accelerators) {
    AsicState state;
    state.queue = std::make_unique<AdmissionQueue>(
        options_.asic_admission, options_.drr_quantum_bytes);
    asic_state_.emplace(aspec.kind, std::move(state));
  }
}

bool ComputeEngine::TargetAvailable(const std::string& kernel,
                                    ExecTarget target) const {
  const DpKernel* k = registry_.Find(kernel);
  return k != nullptr && placement_.Available(*k, target);
}

const TargetStats& ComputeEngine::target_stats(ExecTarget target) const {
  static const TargetStats kEmpty;
  auto it = stats_.find(target);
  return it == stats_.end() ? kEmpty : it->second;
}

Result<WorkItemPtr> ComputeEngine::Invoke(const std::string& kernel,
                                          Buffer input, KernelParams params,
                                          InvokeOptions options) {
  const DpKernel* k = registry_.Find(kernel);
  if (k == nullptr) return Status::NotFound("compute: kernel " + kernel);

  ExecTarget target = options.target;
  if (target == ExecTarget::kAuto) {
    target = placement_.Choose(*k, input.size(), options_.policy);
  } else if (!placement_.Available(*k, target)) {
    // Specified execution on missing hardware: the Fig 6 None return.
    return Status::Unavailable(
        "compute: " + kernel + " cannot run on " +
        std::string(ExecTargetName(target)) + " on this DPU");
  }

  auto item = std::make_shared<WorkItem>();
  item->set_submitted_at(server_->simulator()->now());
  TargetStats& stats = stats_[target];
  ++stats.jobs;
  stats.bytes += input.size();

  if (target == ExecTarget::kDpuAsic) {
    RunOnAsic(*k, std::move(input), std::move(params), item,
              options.tenant);
  } else {
    Dispatch(*k, target, std::move(input), std::move(params), item);
  }
  return item;
}

void ComputeEngine::Dispatch(const DpKernel& kernel, ExecTarget target,
                             Buffer input, KernelParams params,
                             WorkItemPtr item) {
  sim::SimTime service = placement_.ServiceTime(kernel, input.size(),
                                                target);
  placement_.OnDispatch(target, service);

  switch (target) {
    case ExecTarget::kDpuCpu: {
      sim::SimTime t = server_->dpu_cpu().WorkTime(
          input.size(), kernel.cpu_cycles_per_byte, kernel.fixed_cycles);
      server_->dpu_cpu().ExecuteFor(
          t, [this, k = &kernel, target, service, input = std::move(input),
              params = std::move(params), item]() mutable {
            placement_.OnComplete(target, service);
            Finish(*k, target, std::move(input), std::move(params), item);
          });
      break;
    }
    case ExecTarget::kHostCpu: {
      // DMA the input to host memory, compute there, DMA the result back.
      size_t bytes = input.size();
      server_->pcie().Dma(bytes, [this, k = &kernel, target, service, bytes,
                                  input = std::move(input),
                                  params = std::move(params),
                                  item]() mutable {
        sim::SimTime t = server_->host_cpu().WorkTime(
            bytes, k->cpu_cycles_per_byte, k->fixed_cycles);
        server_->host_cpu().ExecuteFor(
            t, [this, k, target, service, input = std::move(input),
                params = std::move(params), item]() mutable {
              // Run the real kernel now so the return DMA carries the
              // actual output size.
              Result<Buffer> result = k->fn(input.span(), params);
              size_t out_bytes = result.ok() ? result->size() : 0;
              server_->pcie().Dma(
                  out_bytes, [this, target, service, item,
                              result = std::move(result)]() mutable {
                    placement_.OnComplete(target, service);
                    item->Complete(std::move(result), target,
                                   server_->simulator()->now());
                  });
            });
      });
      break;
    }
    case ExecTarget::kPcieAccel: {
      hw::PcieAccelerator* accel = server_->pcie_accelerator();
      DPDPU_CHECK(accel != nullptr);
      size_t bytes = input.size();
      double cpb = kernel.cpu_cycles_per_byte;
      // DMA in, device kernel, run the real fn, DMA the result out.
      server_->pcie().Dma(bytes, [this, k = &kernel, target, service,
                                  accel, bytes, cpb,
                                  input = std::move(input),
                                  params = std::move(params),
                                  item]() mutable {
        accel->SubmitJob(
            bytes, cpb,
            [this, k, target, service, input = std::move(input),
             params = std::move(params), item]() mutable {
              Result<Buffer> result = k->fn(input.span(), params);
              size_t out_bytes = result.ok() ? result->size() : 0;
              server_->pcie().Dma(
                  out_bytes, [this, target, service, item,
                              result = std::move(result)]() mutable {
                    placement_.OnComplete(target, service);
                    item->Complete(std::move(result), target,
                                   server_->simulator()->now());
                  });
            });
      });
      break;
    }
    default:
      DPDPU_CHECK(false && "Dispatch only handles CPU targets");
  }
}

Result<WorkItemPtr> ComputeEngine::InvokeFused(
    const std::vector<FusedStep>& steps, Buffer input,
    InvokeOptions options) {
  if (steps.empty()) {
    return Status::InvalidArgument("compute: empty fused chain");
  }
  // Resolve the chain and its combined cost model.
  std::vector<const DpKernel*> kernels;
  double total_cpb = 0;
  uint64_t total_fixed = 0;
  for (const FusedStep& step : steps) {
    const DpKernel* k = registry_.Find(step.kernel);
    if (k == nullptr) {
      return Status::NotFound("compute: kernel " + step.kernel);
    }
    kernels.push_back(k);
    total_cpb += k->cpu_cycles_per_byte;
    total_fixed += k->fixed_cycles;
  }

  ExecTarget target = options.target;
  auto fusable = [](ExecTarget t) {
    return t == ExecTarget::kPcieAccel || t == ExecTarget::kHostCpu ||
           t == ExecTarget::kDpuCpu;
  };
  // A synthetic kernel carrying the combined cost drives placement.
  DpKernel fused;
  fused.name = "fused";
  fused.cpu_cycles_per_byte = total_cpb;
  fused.fixed_cycles = total_fixed;
  if (target == ExecTarget::kAuto) {
    ExecTarget best = ExecTarget::kDpuCpu;
    sim::SimTime best_eta =
        placement_.EstimateCompletion(fused, input.size(),
                                      ExecTarget::kDpuCpu);
    for (ExecTarget t : {ExecTarget::kHostCpu, ExecTarget::kPcieAccel}) {
      if (!placement_.Available(fused, t)) continue;
      sim::SimTime eta = placement_.EstimateCompletion(fused, input.size(),
                                                       t);
      if (eta < best_eta) {
        best_eta = eta;
        best = t;
      }
    }
    target = best;
  } else if (!fusable(target)) {
    return Status::NotSupported(
        "compute: fused chains cannot run on fixed-function ASICs");
  } else if (!placement_.Available(fused, target)) {
    return Status::Unavailable("compute: fused target unavailable");
  }

  auto item = std::make_shared<WorkItem>();
  item->set_submitted_at(server_->simulator()->now());
  TargetStats& stats = stats_[target];
  ++stats.jobs;
  stats.bytes += input.size();

  // The chain's real execution: apply every kernel fn in order.
  auto run_chain = [kernels,
                    step_params = steps](ByteSpan in) -> Result<Buffer> {
    Buffer current(in.data(), in.size());
    for (size_t i = 0; i < kernels.size(); ++i) {
      DPDPU_ASSIGN_OR_RETURN(current, kernels[i]->fn(
                                          current.span(),
                                          step_params[i].params));
    }
    return current;
  };

  sim::SimTime service = placement_.ServiceTime(fused, input.size(),
                                                target);
  placement_.OnDispatch(target, service);
  size_t bytes = input.size();

  switch (target) {
    case ExecTarget::kDpuCpu: {
      sim::SimTime t = server_->dpu_cpu().WorkTime(bytes, total_cpb,
                                                   total_fixed);
      server_->dpu_cpu().ExecuteFor(
          t, [this, target, service, run_chain,
              input = std::move(input), item]() mutable {
            placement_.OnComplete(target, service);
            item->Complete(run_chain(input.span()), target,
                           server_->simulator()->now());
          });
      break;
    }
    case ExecTarget::kHostCpu: {
      server_->pcie().Dma(bytes, [this, target, service, run_chain, bytes,
                                  total_cpb, total_fixed,
                                  input = std::move(input),
                                  item]() mutable {
        sim::SimTime t = server_->host_cpu().WorkTime(bytes, total_cpb,
                                                      total_fixed);
        server_->host_cpu().ExecuteFor(
            t, [this, target, service, run_chain,
                input = std::move(input), item]() mutable {
              Result<Buffer> result = run_chain(input.span());
              size_t out_bytes = result.ok() ? result->size() : 0;
              server_->pcie().Dma(
                  out_bytes, [this, target, service, item,
                              result = std::move(result)]() mutable {
                    placement_.OnComplete(target, service);
                    item->Complete(std::move(result), target,
                                   server_->simulator()->now());
                  });
            });
      });
      break;
    }
    case ExecTarget::kPcieAccel: {
      hw::PcieAccelerator* accel = server_->pcie_accelerator();
      server_->pcie().Dma(bytes, [this, target, service, run_chain, accel,
                                  bytes, total_cpb,
                                  input = std::move(input),
                                  item]() mutable {
        accel->SubmitJob(
            bytes, total_cpb,
            [this, target, service, run_chain, input = std::move(input),
             item]() mutable {
              Result<Buffer> result = run_chain(input.span());
              size_t out_bytes = result.ok() ? result->size() : 0;
              server_->pcie().Dma(
                  out_bytes, [this, target, service, item,
                              result = std::move(result)]() mutable {
                    placement_.OnComplete(target, service);
                    item->Complete(std::move(result), target,
                                   server_->simulator()->now());
                  });
            });
      });
      break;
    }
    default:
      DPDPU_CHECK(false);
  }
  return item;
}

void ComputeEngine::RunOnAsic(const DpKernel& kernel, Buffer input,
                              KernelParams params, WorkItemPtr item,
                              uint32_t tenant) {
  DPDPU_CHECK(kernel.asic_kind.has_value());
  hw::Accelerator* asic = server_->accelerator(*kernel.asic_kind);
  DPDPU_CHECK(asic != nullptr);
  AsicState& state = asic_state_[*kernel.asic_kind];

  // NOTE: size captured before the lambda's move-capture consumes input
  // (argument evaluation order is unspecified).
  size_t bytes = input.size();
  sim::SimTime service = asic->JobTime(bytes);
  placement_.OnDispatch(ExecTarget::kDpuAsic, service);

  if (state.in_flight < asic->spec().max_concurrency) {
    StartAsicJob(kernel, asic, std::move(input), std::move(params), item);
  } else {
    state.queue->Push(
        tenant, bytes,
        [this, k = &kernel, asic, input = std::move(input),
         params = std::move(params), item]() mutable {
          StartAsicJob(*k, asic, std::move(input), std::move(params), item);
        });
  }
}

void ComputeEngine::StartAsicJob(const DpKernel& kernel,
                                 hw::Accelerator* asic, Buffer input,
                                 KernelParams params, WorkItemPtr item) {
  AsicState& state = asic_state_[asic->kind()];
  ++state.in_flight;
  // Size must be read before the move-capture below consumes input.
  size_t bytes = input.size();
  sim::SimTime service = asic->JobTime(bytes);
  hw::AcceleratorKind kind = asic->kind();
  asic->SubmitJob(bytes,
                  [this, k = &kernel, kind, service,
                   input = std::move(input), params = std::move(params),
                   item]() mutable {
                    AsicState& st = asic_state_[kind];
                    --st.in_flight;
                    placement_.OnComplete(ExecTarget::kDpuAsic, service);
                    Finish(*k, ExecTarget::kDpuAsic, std::move(input),
                           std::move(params), item);
                    PumpAsicQueue(kind);
                  });
}

void ComputeEngine::PumpAsicQueue(hw::AcceleratorKind kind) {
  AsicState& state = asic_state_[kind];
  hw::Accelerator* asic = server_->accelerator(kind);
  while (state.in_flight < asic->spec().max_concurrency &&
         !state.queue->empty()) {
    UniqueFunction dispatch;
    if (!state.queue->Pop(&dispatch)) break;
    dispatch();
  }
}

void ComputeEngine::Finish(const DpKernel& kernel, ExecTarget target,
                           Buffer input, KernelParams params,
                           WorkItemPtr item) {
  Result<Buffer> result = kernel.fn(input.span(), params);
  item->Complete(std::move(result), target, server_->simulator()->now());
}

// ---------------------------------------------------------------------------
// Sprocs.
// ---------------------------------------------------------------------------

Status ComputeEngine::RegisterSproc(const std::string& name, SprocFn fn) {
  if (sprocs_.count(name) > 0) {
    return Status::AlreadyExists("sproc: " + name);
  }
  sprocs_[name] = std::move(fn);
  return Status::Ok();
}

Status ComputeEngine::InvokeSproc(const std::string& name) {
  auto it = sprocs_.find(name);
  if (it == sprocs_.end()) return Status::NotFound("sproc: " + name);
  ++sprocs_invoked_;
  // The sproc body runs on a DPU CPU core; charge the dispatch. The
  // context is engine-owned so async continuations may reference it.
  // With migration enabled, a backlogged DPU run queue pushes new
  // invocations to host cores (iPipe-style load migration), paying one
  // PCIe crossing for the invocation context.
  if (options_.sproc_migration &&
      server_->dpu_cpu().resource().queue_length() >
          options_.sproc_migration_queue_threshold) {
    ++sprocs_migrated_;
    // The engine and its sproc table belong to the server, which
    // outlives the run; sprocs never unregister mid-run.
    // simlint:allow(R6): engine outlives the drained event heap
    server_->simulator()->Schedule(
        server_->pcie().spec().latency_ns, [this, fn = &it->second] {
          server_->host_cpu().Execute(
              hw::cal::kKernelDispatchCycles,
              [this, fn] { (*fn)(*sproc_context_); });
        });
    return Status::Ok();
  }
  server_->dpu_cpu().Execute(
      hw::cal::kKernelDispatchCycles,
      [this, fn = &it->second] { (*fn)(*sproc_context_); });
  return Status::Ok();
}

ComputeEngine::~ComputeEngine() = default;

std::vector<std::string> ComputeEngine::Sprocs() const {
  std::vector<std::string> names;
  for (const auto& [name, fn] : sprocs_) names.push_back(name);
  return names;
}

}  // namespace dpdpu::ce
