// Cross-engine pipelines (paper Section 4): "one engine's output can be
// streamed to another engine without waiting for the completion of work
// in progress. This allows for constructing efficient asynchronous
// pipelines that overlap I/O and computation."
//
// Pipeline streams each item through all stages independently (maximal
// overlap); BatchPipeline inserts a barrier between stages (the
// non-streamed strawman the abl_pipeline benchmark compares against).

#ifndef DPDPU_CORE_RUNTIME_PIPELINE_H_
#define DPDPU_CORE_RUNTIME_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "sim/simrace.h"

namespace dpdpu::rt {

/// One asynchronous stage: consume an item, call `done` with the output
/// (possibly later, from a simulation event).
using StageFn =
    std::function<void(Buffer, std::function<void(Result<Buffer>)>)>;

/// Streamed pipeline: items progress independently through stages.
class Pipeline {
 public:
  using OutputFn = std::function<void(Result<Buffer>)>;

  Pipeline& AddStage(StageFn stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }

  void OnOutput(OutputFn fn) { on_output_ = std::move(fn); }

  /// Injects an item at stage 0.
  void Push(Buffer item) {
    // Item counters commute: same-tick pushes/completions from different
    // stages' done-callbacks only permute increment order.
    DPDPU_SIM_ACCESS(race_tag_, "rt::Pipeline", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    ++in_flight_;
    Advance(std::move(item), 0);
  }

  uint64_t in_flight() const { return in_flight_; }
  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }

 private:
  void Advance(Buffer item, size_t stage) {
    DPDPU_SIM_ACCESS(race_tag_, "rt::Pipeline", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    if (stage == stages_.size()) {
      --in_flight_;
      ++completed_;
      if (on_output_) on_output_(std::move(item));
      return;
    }
    stages_[stage](std::move(item),
                   [this, stage](Result<Buffer> out) {
                     if (!out.ok()) {
                       DPDPU_SIM_ACCESS(race_tag_, "rt::Pipeline", /*key=*/0,
                                        sim::AccessKind::kCommutativeWrite);
                       --in_flight_;
                       ++failed_;
                       if (on_output_) on_output_(std::move(out));
                       return;
                     }
                     Advance(std::move(out).value(), stage + 1);
                   });
  }

  std::vector<StageFn> stages_;
  OutputFn on_output_;
  uint64_t in_flight_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  /// Stage done-callbacks fire from arbitrary engine events; the item
  /// counters they bump are order-insensitive.
  sim::RaceTag race_tag_;
};

/// Barrier pipeline: stage N+1 starts only after stage N finished for
/// every item. Same stage functions, no overlap.
class BatchPipeline {
 public:
  using DoneFn = std::function<void(std::vector<Result<Buffer>>)>;

  BatchPipeline& AddStage(StageFn stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }

  /// Runs the whole batch; `done` fires when the last stage drains.
  void Run(std::vector<Buffer> items, DoneFn done);

 private:
  void RunStage(size_t stage, std::vector<Buffer> items, DoneFn done);

  std::vector<StageFn> stages_;
};

}  // namespace dpdpu::rt

#endif  // DPDPU_CORE_RUNTIME_PIPELINE_H_
