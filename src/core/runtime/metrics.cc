#include "core/runtime/metrics.h"

#include <cstdio>

namespace dpdpu::rt {

void UtilizationProbe::Start() {
  start_time_ = server_->simulator()->now();
  host_busy_start_ = server_->host_cpu().resource().busy_time();
  dpu_busy_start_ = server_->dpu_cpu().resource().busy_time();
}

void UtilizationProbe::Stop() {
  stop_time_ = server_->simulator()->now();
  host_busy_stop_ = server_->host_cpu().resource().busy_time();
  dpu_busy_stop_ = server_->dpu_cpu().resource().busy_time();
}

double UtilizationProbe::host_cores() const {
  sim::SimTime window = window_ns();
  return window == 0 ? 0.0
                     : double(host_busy_stop_ - host_busy_start_) /
                           double(window);
}

double UtilizationProbe::dpu_cores() const {
  sim::SimTime window = window_ns();
  return window == 0 ? 0.0
                     : double(dpu_busy_stop_ - dpu_busy_start_) /
                           double(window);
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void EmitJsonMetric(const std::string& bench, const std::string& metric,
                    double value, const std::string& unit, uint64_t seed) {
  // Metric names in this repo are identifier-shaped; no escaping needed.
  std::printf(
      "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.17g,\"unit\":\"%s\","
      "\"seed\":%llu}\n",
      bench.c_str(), metric.c_str(), value, unit.c_str(),
      (unsigned long long)seed);
}

void EmitWallClockMetrics(const std::string& bench, const WallTimer& timer,
                          uint64_t events_executed, uint64_t seed) {
  double seconds = timer.Seconds();
  EmitJsonMetric(bench, "wall_runtime", seconds, "seconds", seed);
  if (seconds > 0) {
    EmitJsonMetric(bench, "events_per_sec",
                   double(events_executed) / seconds, "events_per_sec",
                   seed);
  }
}

}  // namespace dpdpu::rt
