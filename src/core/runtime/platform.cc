#include "core/runtime/platform.h"

#include "common/logging.h"

namespace dpdpu::rt {

Platform::Platform(sim::Simulator* sim, netsub::Network* network,
                   PlatformOptions options)
    : sim_(sim), options_(std::move(options)) {
  server_ = std::make_unique<hw::Server>(sim, options_.server_spec);

  device_ = std::make_unique<fssub::MemBlockDevice>(
      options_.fs_block_size, options_.fs_device_blocks);
  auto fs = fssub::DpuFs::Format(device_.get());
  DPDPU_CHECK(fs.ok());
  fs_ = std::move(fs).value();

  network_engine_ = std::make_unique<ne::NetworkEngine>(
      server_.get(), network, options_.node, options_.network);
  network->Attach(options_.node, &server_->nic_tx(),
                  [this](netsub::Packet packet) {
                    network_engine_->OnPacket(std::move(packet));
                  });

  storage_ = std::make_unique<se::StorageEngine>(
      server_.get(), network_engine_.get(), fs_.get(), options_.storage);

  compute_ = std::make_unique<ce::ComputeEngine>(
      server_.get(), ce::KernelRegistry::Builtin(), options_.compute);
  compute_->SetEngineContext(network_engine_.get(), storage_.get());
}

}  // namespace dpdpu::rt
