#include "core/runtime/shared_state.h"

#include "common/logging.h"

namespace dpdpu::rt {

namespace {
// Accounting overhead per entry (key bytes + index metadata).
size_t EntryOverhead(const std::string& key) { return key.size() + 64; }
}  // namespace

SharedStateTable::SharedStateTable(hw::Server* server,
                                   uint64_t capacity_bytes)
    : server_(server) {
  capacity_ = std::min(capacity_bytes, server->dpu_memory().available());
  DPDPU_CHECK(server_->dpu_memory().Allocate(capacity_).ok());
}

SharedStateTable::~SharedStateTable() {
  server_->dpu_memory().Free(capacity_);
}

Status SharedStateTable::Put(const std::string& key, Buffer value) {
  ++stats_.puts;
  size_t new_size = value.size() + EntryOverhead(key);
  auto it = entries_.find(key);
  size_t old_size =
      it == entries_.end() ? 0 : it->second.value.size() + EntryOverhead(key);
  if (used_ - old_size + new_size > capacity_) {
    ++stats_.rejected_puts;
    return Status::ResourceExhausted("shared state: over capacity");
  }
  used_ = used_ - old_size + new_size;
  if (it == entries_.end()) {
    entries_[key] = Entry{std::move(value), next_version_++};
  } else {
    it->second.value = std::move(value);
    it->second.version = next_version_++;
  }
  return Status::Ok();
}

const Buffer* SharedStateTable::Get(const std::string& key) {
  ++stats_.gets;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  return &it->second.value;
}

uint64_t SharedStateTable::Version(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.version;
}

bool SharedStateTable::Erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  used_ -= it->second.value.size() + EntryOverhead(key);
  entries_.erase(it);
  ++stats_.erases;
  return true;
}

std::vector<std::string> SharedStateTable::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

}  // namespace dpdpu::rt
