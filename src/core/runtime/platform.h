// Platform: one DPDPU-equipped server, fully assembled — hardware model,
// DPU file system, and the three engines (Figure 5) — attached to the
// datacenter fabric. This is the top-level object applications create.

#ifndef DPDPU_CORE_RUNTIME_PLATFORM_H_
#define DPDPU_CORE_RUNTIME_PLATFORM_H_

#include <memory>

#include "core/compute/compute_engine.h"
#include "core/network/network_engine.h"
#include "core/storage/storage_engine.h"
#include "fssub/block_device.h"
#include "fssub/dpufs.h"
#include "hw/machine.h"
#include "netsub/network.h"
#include "sim/simulator.h"

namespace dpdpu::rt {

struct PlatformOptions {
  hw::ServerSpec server_spec = hw::DefaultServerSpec();
  netsub::NodeId node = 1;
  ne::NetworkEngineOptions network;
  se::StorageEngineOptions storage;
  ce::ComputeEngineOptions compute;
  /// Backing device geometry for the DPU file system.
  uint32_t fs_block_size = 4096;
  uint64_t fs_device_blocks = 64 * 1024;  // 256 MB default
};

class Platform {
 public:
  Platform(sim::Simulator* sim, netsub::Network* network,
           PlatformOptions options = {});

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  sim::Simulator* simulator() { return sim_; }
  netsub::NodeId node() const { return options_.node; }
  hw::Server& server() { return *server_; }
  fssub::DpuFs& fs() { return *fs_; }
  fssub::MemBlockDevice& block_device() { return *device_; }

  ce::ComputeEngine& compute() { return *compute_; }
  ne::NetworkEngine& network() { return *network_engine_; }
  se::StorageEngine& storage() { return *storage_; }

 private:
  sim::Simulator* sim_;
  PlatformOptions options_;
  std::unique_ptr<hw::Server> server_;
  std::unique_ptr<fssub::MemBlockDevice> device_;
  std::unique_ptr<fssub::DpuFs> fs_;
  std::unique_ptr<ne::NetworkEngine> network_engine_;
  std::unique_ptr<se::StorageEngine> storage_;
  std::unique_ptr<ce::ComputeEngine> compute_;
};

}  // namespace dpdpu::rt

#endif  // DPDPU_CORE_RUNTIME_PLATFORM_H_
