#include "core/runtime/pipeline.h"

#include <memory>

namespace dpdpu::rt {

void BatchPipeline::Run(std::vector<Buffer> items, DoneFn done) {
  RunStage(0, std::move(items), std::move(done));
}

void BatchPipeline::RunStage(size_t stage, std::vector<Buffer> items,
                             DoneFn done) {
  if (stage == stages_.size()) {
    std::vector<Result<Buffer>> out;
    out.reserve(items.size());
    for (Buffer& b : items) out.push_back(std::move(b));
    done(std::move(out));
    return;
  }
  // Issue the whole batch into this stage; the barrier completes when
  // every item returns.
  struct BatchState {
    std::vector<Result<Buffer>> results;
    size_t remaining;
  };
  auto state = std::make_shared<BatchState>();
  size_t n = items.size();
  state->results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    state->results.push_back(Status::Internal("pending"));
  }
  state->remaining = n;
  if (n == 0) {
    done({});
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    stages_[stage](std::move(items[i]),
                   [this, stage, state, i, done](Result<Buffer> out) {
                     state->results[i] = std::move(out);
                     if (--state->remaining > 0) return;
                     // Barrier reached: carry successes forward.
                     std::vector<Buffer> next;
                     next.reserve(state->results.size());
                     for (Result<Buffer>& r : state->results) {
                       if (r.ok()) next.push_back(std::move(r).value());
                     }
                     RunStage(stage + 1, std::move(next), done);
                   });
  }
}

}  // namespace dpdpu::rt
