// Shared state across the three engines (paper Section 4: "DPDPU
// facilitates composability using two mechanisms. First, it enables
// shared state across the three engines via the DPU memory. The schema
// of the state and cached data are customizable by the application.
// Note that within each component, consistency is not guaranteed due to
// asynchronous accesses").
//
// SharedStateTable is a byte-value KV region carved out of DPU memory.
// Capacity is enforced through the server's MemoryPool (the 16 GB
// constraint), and every entry carries a version counter so engines can
// detect concurrent asynchronous updates — the paper's "no consistency
// guaranteed" caveat made observable.

#ifndef DPDPU_CORE_RUNTIME_SHARED_STATE_H_
#define DPDPU_CORE_RUNTIME_SHARED_STATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "hw/machine.h"

namespace dpdpu::rt {

struct SharedStateStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t erases = 0;
  uint64_t rejected_puts = 0;  // capacity
};

class SharedStateTable {
 public:
  /// Reserves `capacity_bytes` of DPU memory; the reservation shrinks to
  /// what the pool can grant.
  SharedStateTable(hw::Server* server, uint64_t capacity_bytes);
  ~SharedStateTable();

  SharedStateTable(const SharedStateTable&) = delete;
  SharedStateTable& operator=(const SharedStateTable&) = delete;

  uint64_t capacity() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t entry_count() const { return entries_.size(); }

  /// Inserts or replaces; fails with ResourceExhausted when the value
  /// does not fit (entries are never evicted implicitly — the schema is
  /// the application's).
  Status Put(const std::string& key, Buffer value);

  /// nullptr when absent. The pointer is valid until the next mutation
  /// of this key.
  const Buffer* Get(const std::string& key);

  /// Monotonic per-key version (0 = never written). Engines compare
  /// versions across asynchronous accesses to detect intervening writes.
  uint64_t Version(const std::string& key) const;

  bool Erase(const std::string& key);

  std::vector<std::string> Keys() const;
  const SharedStateStats& stats() const { return stats_; }

 private:
  struct Entry {
    Buffer value;
    uint64_t version = 0;
  };

  hw::Server* server_;
  uint64_t capacity_ = 0;
  uint64_t used_ = 0;
  uint64_t next_version_ = 1;
  std::map<std::string, Entry> entries_;
  SharedStateStats stats_;
};

}  // namespace dpdpu::rt

#endif  // DPDPU_CORE_RUNTIME_SHARED_STATE_H_
