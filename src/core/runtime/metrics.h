// Measurement helpers for experiments: interval probes over the hardware
// model's busy-time counters, reporting the paper's "CPU cores consumed"
// metric for a steady-state window.

#ifndef DPDPU_CORE_RUNTIME_METRICS_H_
#define DPDPU_CORE_RUNTIME_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "hw/machine.h"
#include "sim/simulator.h"

namespace dpdpu::rt {

/// Busy-core-equivalents between Start() and Stop(), per cluster.
class UtilizationProbe {
 public:
  explicit UtilizationProbe(hw::Server* server) : server_(server) {}

  void Start();
  void Stop();

  /// Host/DPU cores consumed over the window (busy-time delta / window).
  double host_cores() const;
  double dpu_cores() const;
  sim::SimTime window_ns() const { return stop_time_ - start_time_; }

 private:
  hw::Server* server_;
  sim::SimTime start_time_ = 0;
  sim::SimTime stop_time_ = 0;
  sim::SimTime host_busy_start_ = 0;
  sim::SimTime host_busy_stop_ = 0;
  sim::SimTime dpu_busy_start_ = 0;
  sim::SimTime dpu_busy_stop_ = 0;
};

/// Formats a double with fixed precision (bench table output helper).
std::string Fmt(double value, int decimals = 2);

/// Emits one machine-readable metric line to stdout, alongside the human
/// tables, so perf trajectories can be scraped into BENCH_*.json files:
///   {"bench":"<bench>","metric":"<metric>","value":<v>,"unit":"<unit>","seed":<seed>}
/// Values are printed with enough precision to round-trip a double.
void EmitJsonMetric(const std::string& bench, const std::string& metric,
                    double value, const std::string& unit,
                    uint64_t seed = 0);

/// Real (wall-clock) stopwatch for bench binaries; starts on
/// construction. Distinct from sim::SimTime: this measures how long the
/// simulation itself takes to run, not simulated time.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Standard wall-clock metric pair every bench emits alongside its
/// simulated results: total runtime ("wall_runtime", seconds) and event
/// throughput ("events_per_sec", simulator events per wall second).
/// scripts/check_bench.py treats these units as jitter-tolerant, unlike
/// the bit-deterministic simulated metrics.
void EmitWallClockMetrics(const std::string& bench, const WallTimer& timer,
                          uint64_t events_executed, uint64_t seed = 0);

}  // namespace dpdpu::rt

#endif  // DPDPU_CORE_RUNTIME_METRICS_H_
