file(REMOVE_RECURSE
  "libdpdpu_core.a"
)
