# Empty compiler generated dependencies file for dpdpu_core.
# This may be replaced when dependencies are built.
