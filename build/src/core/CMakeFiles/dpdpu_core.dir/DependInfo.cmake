
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compute/compute_engine.cc" "src/core/CMakeFiles/dpdpu_core.dir/compute/compute_engine.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/compute/compute_engine.cc.o.d"
  "/root/repo/src/core/compute/dp_kernel.cc" "src/core/CMakeFiles/dpdpu_core.dir/compute/dp_kernel.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/compute/dp_kernel.cc.o.d"
  "/root/repo/src/core/compute/scheduler.cc" "src/core/CMakeFiles/dpdpu_core.dir/compute/scheduler.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/compute/scheduler.cc.o.d"
  "/root/repo/src/core/compute/sproc.cc" "src/core/CMakeFiles/dpdpu_core.dir/compute/sproc.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/compute/sproc.cc.o.d"
  "/root/repo/src/core/network/flow.cc" "src/core/CMakeFiles/dpdpu_core.dir/network/flow.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/network/flow.cc.o.d"
  "/root/repo/src/core/network/network_engine.cc" "src/core/CMakeFiles/dpdpu_core.dir/network/network_engine.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/network/network_engine.cc.o.d"
  "/root/repo/src/core/network/rdma_flow.cc" "src/core/CMakeFiles/dpdpu_core.dir/network/rdma_flow.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/network/rdma_flow.cc.o.d"
  "/root/repo/src/core/network/rdma_offload.cc" "src/core/CMakeFiles/dpdpu_core.dir/network/rdma_offload.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/network/rdma_offload.cc.o.d"
  "/root/repo/src/core/runtime/metrics.cc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/metrics.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/metrics.cc.o.d"
  "/root/repo/src/core/runtime/pipeline.cc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/pipeline.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/pipeline.cc.o.d"
  "/root/repo/src/core/runtime/platform.cc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/platform.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/platform.cc.o.d"
  "/root/repo/src/core/runtime/shared_state.cc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/shared_state.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/runtime/shared_state.cc.o.d"
  "/root/repo/src/core/storage/file_service.cc" "src/core/CMakeFiles/dpdpu_core.dir/storage/file_service.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/storage/file_service.cc.o.d"
  "/root/repo/src/core/storage/offload_engine.cc" "src/core/CMakeFiles/dpdpu_core.dir/storage/offload_engine.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/storage/offload_engine.cc.o.d"
  "/root/repo/src/core/storage/storage_engine.cc" "src/core/CMakeFiles/dpdpu_core.dir/storage/storage_engine.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/storage/storage_engine.cc.o.d"
  "/root/repo/src/core/storage/traffic_director.cc" "src/core/CMakeFiles/dpdpu_core.dir/storage/traffic_director.cc.o" "gcc" "src/core/CMakeFiles/dpdpu_core.dir/storage/traffic_director.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpdpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dpdpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/dpdpu_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/netsub/CMakeFiles/dpdpu_netsub.dir/DependInfo.cmake"
  "/root/repo/build/src/fssub/CMakeFiles/dpdpu_fssub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
