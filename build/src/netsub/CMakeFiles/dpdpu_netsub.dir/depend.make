# Empty dependencies file for dpdpu_netsub.
# This may be replaced when dependencies are built.
