file(REMOVE_RECURSE
  "CMakeFiles/dpdpu_netsub.dir/minitcp.cc.o"
  "CMakeFiles/dpdpu_netsub.dir/minitcp.cc.o.d"
  "CMakeFiles/dpdpu_netsub.dir/network.cc.o"
  "CMakeFiles/dpdpu_netsub.dir/network.cc.o.d"
  "CMakeFiles/dpdpu_netsub.dir/rdma.cc.o"
  "CMakeFiles/dpdpu_netsub.dir/rdma.cc.o.d"
  "libdpdpu_netsub.a"
  "libdpdpu_netsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpdpu_netsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
