file(REMOVE_RECURSE
  "libdpdpu_netsub.a"
)
