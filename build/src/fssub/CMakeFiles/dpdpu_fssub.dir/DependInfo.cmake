
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fssub/block_device.cc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/block_device.cc.o" "gcc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/block_device.cc.o.d"
  "/root/repo/src/fssub/dpufs.cc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/dpufs.cc.o" "gcc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/dpufs.cc.o.d"
  "/root/repo/src/fssub/journal.cc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/journal.cc.o" "gcc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/journal.cc.o.d"
  "/root/repo/src/fssub/page_cache.cc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/page_cache.cc.o" "gcc" "src/fssub/CMakeFiles/dpdpu_fssub.dir/page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpdpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/dpdpu_kern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
