file(REMOVE_RECURSE
  "CMakeFiles/dpdpu_fssub.dir/block_device.cc.o"
  "CMakeFiles/dpdpu_fssub.dir/block_device.cc.o.d"
  "CMakeFiles/dpdpu_fssub.dir/dpufs.cc.o"
  "CMakeFiles/dpdpu_fssub.dir/dpufs.cc.o.d"
  "CMakeFiles/dpdpu_fssub.dir/journal.cc.o"
  "CMakeFiles/dpdpu_fssub.dir/journal.cc.o.d"
  "CMakeFiles/dpdpu_fssub.dir/page_cache.cc.o"
  "CMakeFiles/dpdpu_fssub.dir/page_cache.cc.o.d"
  "libdpdpu_fssub.a"
  "libdpdpu_fssub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpdpu_fssub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
