# Empty dependencies file for dpdpu_fssub.
# This may be replaced when dependencies are built.
