file(REMOVE_RECURSE
  "libdpdpu_fssub.a"
)
