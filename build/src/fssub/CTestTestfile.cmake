# CMake generated Testfile for 
# Source directory: /root/repo/src/fssub
# Build directory: /root/repo/build/src/fssub
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
