
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/chacha20.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/chacha20.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/chacha20.cc.o.d"
  "/root/repo/src/kern/crc32.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/crc32.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/crc32.cc.o.d"
  "/root/repo/src/kern/dedup.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/dedup.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/dedup.cc.o.d"
  "/root/repo/src/kern/deflate.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/deflate.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/deflate.cc.o.d"
  "/root/repo/src/kern/huffman.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/huffman.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/huffman.cc.o.d"
  "/root/repo/src/kern/inflate.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/inflate.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/inflate.cc.o.d"
  "/root/repo/src/kern/regex.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/regex.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/regex.cc.o.d"
  "/root/repo/src/kern/relational.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/relational.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/relational.cc.o.d"
  "/root/repo/src/kern/textgen.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/textgen.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/textgen.cc.o.d"
  "/root/repo/src/kern/zlib_format.cc" "src/kern/CMakeFiles/dpdpu_kern.dir/zlib_format.cc.o" "gcc" "src/kern/CMakeFiles/dpdpu_kern.dir/zlib_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpdpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
