file(REMOVE_RECURSE
  "CMakeFiles/dpdpu_kern.dir/chacha20.cc.o"
  "CMakeFiles/dpdpu_kern.dir/chacha20.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/crc32.cc.o"
  "CMakeFiles/dpdpu_kern.dir/crc32.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/dedup.cc.o"
  "CMakeFiles/dpdpu_kern.dir/dedup.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/deflate.cc.o"
  "CMakeFiles/dpdpu_kern.dir/deflate.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/huffman.cc.o"
  "CMakeFiles/dpdpu_kern.dir/huffman.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/inflate.cc.o"
  "CMakeFiles/dpdpu_kern.dir/inflate.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/regex.cc.o"
  "CMakeFiles/dpdpu_kern.dir/regex.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/relational.cc.o"
  "CMakeFiles/dpdpu_kern.dir/relational.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/textgen.cc.o"
  "CMakeFiles/dpdpu_kern.dir/textgen.cc.o.d"
  "CMakeFiles/dpdpu_kern.dir/zlib_format.cc.o"
  "CMakeFiles/dpdpu_kern.dir/zlib_format.cc.o.d"
  "libdpdpu_kern.a"
  "libdpdpu_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpdpu_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
