file(REMOVE_RECURSE
  "libdpdpu_kern.a"
)
