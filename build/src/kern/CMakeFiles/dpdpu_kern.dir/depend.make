# Empty dependencies file for dpdpu_kern.
# This may be replaced when dependencies are built.
