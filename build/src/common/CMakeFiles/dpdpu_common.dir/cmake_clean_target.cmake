file(REMOVE_RECURSE
  "libdpdpu_common.a"
)
