# Empty dependencies file for dpdpu_common.
# This may be replaced when dependencies are built.
