file(REMOVE_RECURSE
  "CMakeFiles/dpdpu_common.dir/buffer.cc.o"
  "CMakeFiles/dpdpu_common.dir/buffer.cc.o.d"
  "CMakeFiles/dpdpu_common.dir/histogram.cc.o"
  "CMakeFiles/dpdpu_common.dir/histogram.cc.o.d"
  "CMakeFiles/dpdpu_common.dir/logging.cc.o"
  "CMakeFiles/dpdpu_common.dir/logging.cc.o.d"
  "CMakeFiles/dpdpu_common.dir/rng.cc.o"
  "CMakeFiles/dpdpu_common.dir/rng.cc.o.d"
  "CMakeFiles/dpdpu_common.dir/status.cc.o"
  "CMakeFiles/dpdpu_common.dir/status.cc.o.d"
  "libdpdpu_common.a"
  "libdpdpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpdpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
