file(REMOVE_RECURSE
  "libdpdpu_hw.a"
)
