# Empty compiler generated dependencies file for dpdpu_hw.
# This may be replaced when dependencies are built.
