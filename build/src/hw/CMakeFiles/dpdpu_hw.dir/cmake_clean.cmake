file(REMOVE_RECURSE
  "CMakeFiles/dpdpu_hw.dir/machine.cc.o"
  "CMakeFiles/dpdpu_hw.dir/machine.cc.o.d"
  "libdpdpu_hw.a"
  "libdpdpu_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpdpu_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
