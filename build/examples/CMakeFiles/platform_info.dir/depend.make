# Empty dependencies file for platform_info.
# This may be replaced when dependencies are built.
