file(REMOVE_RECURSE
  "CMakeFiles/platform_info.dir/platform_info.cpp.o"
  "CMakeFiles/platform_info.dir/platform_info.cpp.o.d"
  "platform_info"
  "platform_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
