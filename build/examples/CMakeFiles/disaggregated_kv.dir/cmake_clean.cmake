file(REMOVE_RECURSE
  "CMakeFiles/disaggregated_kv.dir/disaggregated_kv.cpp.o"
  "CMakeFiles/disaggregated_kv.dir/disaggregated_kv.cpp.o.d"
  "disaggregated_kv"
  "disaggregated_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
