# Empty dependencies file for disaggregated_kv.
# This may be replaced when dependencies are built.
