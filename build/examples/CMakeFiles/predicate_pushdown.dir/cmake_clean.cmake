file(REMOVE_RECURSE
  "CMakeFiles/predicate_pushdown.dir/predicate_pushdown.cpp.o"
  "CMakeFiles/predicate_pushdown.dir/predicate_pushdown.cpp.o.d"
  "predicate_pushdown"
  "predicate_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
