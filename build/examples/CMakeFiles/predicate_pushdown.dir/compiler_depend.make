# Empty compiler generated dependencies file for predicate_pushdown.
# This may be replaced when dependencies are built.
