file(REMOVE_RECURSE
  "CMakeFiles/fig2_storage_cpu.dir/fig2_storage_cpu.cc.o"
  "CMakeFiles/fig2_storage_cpu.dir/fig2_storage_cpu.cc.o.d"
  "fig2_storage_cpu"
  "fig2_storage_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_storage_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
