# Empty compiler generated dependencies file for fig2_storage_cpu.
# This may be replaced when dependencies are built.
