file(REMOVE_RECURSE
  "CMakeFiles/dds_cpu_savings.dir/dds_cpu_savings.cc.o"
  "CMakeFiles/dds_cpu_savings.dir/dds_cpu_savings.cc.o.d"
  "dds_cpu_savings"
  "dds_cpu_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_cpu_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
