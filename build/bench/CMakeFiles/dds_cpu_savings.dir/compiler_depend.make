# Empty compiler generated dependencies file for dds_cpu_savings.
# This may be replaced when dependencies are built.
