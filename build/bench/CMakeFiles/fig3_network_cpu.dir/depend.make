# Empty dependencies file for fig3_network_cpu.
# This may be replaced when dependencies are built.
