file(REMOVE_RECURSE
  "CMakeFiles/abl_persistence.dir/abl_persistence.cc.o"
  "CMakeFiles/abl_persistence.dir/abl_persistence.cc.o.d"
  "abl_persistence"
  "abl_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
