# Empty dependencies file for abl_persistence.
# This may be replaced when dependencies are built.
