file(REMOVE_RECURSE
  "CMakeFiles/abl_fusion.dir/abl_fusion.cc.o"
  "CMakeFiles/abl_fusion.dir/abl_fusion.cc.o.d"
  "abl_fusion"
  "abl_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
