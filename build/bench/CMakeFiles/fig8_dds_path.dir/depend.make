# Empty dependencies file for fig8_dds_path.
# This may be replaced when dependencies are built.
