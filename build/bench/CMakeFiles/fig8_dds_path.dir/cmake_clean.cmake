file(REMOVE_RECURSE
  "CMakeFiles/fig8_dds_path.dir/fig8_dds_path.cc.o"
  "CMakeFiles/fig8_dds_path.dir/fig8_dds_path.cc.o.d"
  "fig8_dds_path"
  "fig8_dds_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dds_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
