
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_cache_split.cc" "bench/CMakeFiles/abl_cache_split.dir/abl_cache_split.cc.o" "gcc" "bench/CMakeFiles/abl_cache_split.dir/abl_cache_split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpdpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/dpdpu_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/netsub/CMakeFiles/dpdpu_netsub.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dpdpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fssub/CMakeFiles/dpdpu_fssub.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpdpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
