file(REMOVE_RECURSE
  "CMakeFiles/abl_cache_split.dir/abl_cache_split.cc.o"
  "CMakeFiles/abl_cache_split.dir/abl_cache_split.cc.o.d"
  "abl_cache_split"
  "abl_cache_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
