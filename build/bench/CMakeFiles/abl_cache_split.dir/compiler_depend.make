# Empty compiler generated dependencies file for abl_cache_split.
# This may be replaced when dependencies are built.
