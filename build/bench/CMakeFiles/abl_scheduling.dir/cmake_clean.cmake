file(REMOVE_RECURSE
  "CMakeFiles/abl_scheduling.dir/abl_scheduling.cc.o"
  "CMakeFiles/abl_scheduling.dir/abl_scheduling.cc.o.d"
  "abl_scheduling"
  "abl_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
