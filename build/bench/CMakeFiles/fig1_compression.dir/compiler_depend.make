# Empty compiler generated dependencies file for fig1_compression.
# This may be replaced when dependencies are built.
