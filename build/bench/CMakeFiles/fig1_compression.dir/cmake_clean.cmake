file(REMOVE_RECURSE
  "CMakeFiles/fig1_compression.dir/fig1_compression.cc.o"
  "CMakeFiles/fig1_compression.dir/fig1_compression.cc.o.d"
  "fig1_compression"
  "fig1_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
