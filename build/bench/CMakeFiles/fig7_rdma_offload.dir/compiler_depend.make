# Empty compiler generated dependencies file for fig7_rdma_offload.
# This may be replaced when dependencies are built.
