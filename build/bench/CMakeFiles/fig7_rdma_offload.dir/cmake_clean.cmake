file(REMOVE_RECURSE
  "CMakeFiles/fig7_rdma_offload.dir/fig7_rdma_offload.cc.o"
  "CMakeFiles/fig7_rdma_offload.dir/fig7_rdma_offload.cc.o.d"
  "fig7_rdma_offload"
  "fig7_rdma_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rdma_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
