file(REMOVE_RECURSE
  "CMakeFiles/deflate_test.dir/deflate_test.cc.o"
  "CMakeFiles/deflate_test.dir/deflate_test.cc.o.d"
  "deflate_test"
  "deflate_test.pdb"
  "deflate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
