# Empty compiler generated dependencies file for se_test.
# This may be replaced when dependencies are built.
