file(REMOVE_RECURSE
  "CMakeFiles/se_test.dir/se_test.cc.o"
  "CMakeFiles/se_test.dir/se_test.cc.o.d"
  "se_test"
  "se_test.pdb"
  "se_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
