# Empty dependencies file for ne_test.
# This may be replaced when dependencies are built.
