file(REMOVE_RECURSE
  "CMakeFiles/ne_test.dir/ne_test.cc.o"
  "CMakeFiles/ne_test.dir/ne_test.cc.o.d"
  "ne_test"
  "ne_test.pdb"
  "ne_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ne_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
