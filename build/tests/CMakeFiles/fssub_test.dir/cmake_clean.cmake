file(REMOVE_RECURSE
  "CMakeFiles/fssub_test.dir/fssub_test.cc.o"
  "CMakeFiles/fssub_test.dir/fssub_test.cc.o.d"
  "fssub_test"
  "fssub_test.pdb"
  "fssub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fssub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
