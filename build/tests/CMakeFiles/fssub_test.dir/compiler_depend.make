# Empty compiler generated dependencies file for fssub_test.
# This may be replaced when dependencies are built.
