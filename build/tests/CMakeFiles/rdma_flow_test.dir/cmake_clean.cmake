file(REMOVE_RECURSE
  "CMakeFiles/rdma_flow_test.dir/rdma_flow_test.cc.o"
  "CMakeFiles/rdma_flow_test.dir/rdma_flow_test.cc.o.d"
  "rdma_flow_test"
  "rdma_flow_test.pdb"
  "rdma_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
