# Empty compiler generated dependencies file for rdma_flow_test.
# This may be replaced when dependencies are built.
