# Empty compiler generated dependencies file for netsub_test.
# This may be replaced when dependencies are built.
