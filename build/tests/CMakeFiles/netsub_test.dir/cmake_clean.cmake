file(REMOVE_RECURSE
  "CMakeFiles/netsub_test.dir/netsub_test.cc.o"
  "CMakeFiles/netsub_test.dir/netsub_test.cc.o.d"
  "netsub_test"
  "netsub_test.pdb"
  "netsub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
