file(REMOVE_RECURSE
  "CMakeFiles/fs_model_test.dir/fs_model_test.cc.o"
  "CMakeFiles/fs_model_test.dir/fs_model_test.cc.o.d"
  "fs_model_test"
  "fs_model_test.pdb"
  "fs_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
