# Empty dependencies file for fs_model_test.
# This may be replaced when dependencies are built.
