file(REMOVE_RECURSE
  "CMakeFiles/ce_test.dir/ce_test.cc.o"
  "CMakeFiles/ce_test.dir/ce_test.cc.o.d"
  "ce_test"
  "ce_test.pdb"
  "ce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
