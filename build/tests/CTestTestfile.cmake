# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/deflate_test[1]_include.cmake")
include("/root/repo/build/tests/kern_test[1]_include.cmake")
include("/root/repo/build/tests/netsub_test[1]_include.cmake")
include("/root/repo/build/tests/fssub_test[1]_include.cmake")
include("/root/repo/build/tests/ce_test[1]_include.cmake")
include("/root/repo/build/tests/ne_test[1]_include.cmake")
include("/root/repo/build/tests/se_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fs_model_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_flow_test[1]_include.cmake")
