#!/usr/bin/env python3
"""Seeded-violation self-tests for simscope.

Each analysis behavior gets a fixture tree that MUST produce a finding
and a twin that must stay quiet — so a refactor of the analyzer that
silently stops detecting a class of annotation gap fails CI, exactly
like simlint's selftest does for the determinism rules. Run directly or
via ctest (`simscope_selftest`).
"""

import contextlib
import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import simscope  # noqa: E402


def run_scope(files, extra_args=None, allowlist=""):
    """Runs simscope.main over a temp tree; returns (exit_code, output)."""
    tmp = tempfile.mkdtemp(prefix="simscope_selftest_")
    try:
        for rel, text in files.items():
            full = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w") as f:
                f.write(text)
        allow_path = os.path.join(tmp, "allow.txt")
        with open(allow_path, "w") as f:
            f.write(allowlist)
        argv = ["--repo-root", tmp, "--frontend", "builtin",
                "--allowlist", allow_path, "src"] + (extra_args or [])
        buf = io.StringIO()
        try:
            with contextlib.redirect_stdout(buf):
                code = simscope.main(argv)
        except SystemExit as e:
            code = e.code
        return code, buf.getvalue()
    finally:
        shutil.rmtree(tmp)


WIDGET_H = """\
class Widget {
 public:
  Widget();
  void Poke();
  void Prod();

 private:
  int dummy_ = 0;
  int count_ = 0;
  sim::RaceTag race_tag_;
};
"""

TWO_ROOT_CC = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] { count_ = 1; });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] { count_ = 2; });
}
"""


class S1DetectionTest(unittest.TestCase):
    def test_two_context_unannotated_write_fires(self):
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": TWO_ROOT_CC})
        self.assertEqual(code, 1)
        self.assertIn("S1", out)
        self.assertIn("Widget::count_", out)

    def test_single_context_write_is_clean(self):
        one_root = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] { count_ = 1; });
}
void Widget::Prod() {}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": one_root})
        self.assertEqual(code, 0, out)

    def test_annotated_writes_are_clean(self):
        annotated = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    count_ = 1;
  });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    count_ = 2;
  });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": annotated})
        self.assertEqual(code, 0, out)

    def test_one_uncovered_path_still_fires(self):
        # One of the two racing contexts annotated is not enough: the
        # diff is against ALL write paths.
        half = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    count_ = 1;
  });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] { count_ = 2; });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": half})
        self.assertEqual(code, 1)
        self.assertIn("Widget::count_", out)

    def test_entry_annotation_covers_callee_closure(self):
        # An annotation at the region entry covers writes in functions
        # it (transitively) calls — the region-closure coverage model.
        closure = """\
#include "fixture.h"
void Widget::Bump() { count_ += 1; }
void Widget::Poke() {
  sim_->Schedule(10, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    Bump();
  });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    Bump();
  });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": closure})
        self.assertEqual(code, 0, out)

    def test_provenance_chain_names_the_helper(self):
        helper = """\
#include "fixture.h"
void Widget::Bump() { count_ += 1; }
void Widget::Poke() {
  sim_->Schedule(10, [this] { Bump(); });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] { Bump(); });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": helper})
        self.assertEqual(code, 1)
        self.assertIn("Widget::Bump", out)

    def test_receiver_typed_write_resolves_to_owner_class(self):
        # A write through a typed pointer (`w->count_`) must attribute
        # to the pointee's class, not the writer's.
        cross = """\
#include "fixture.h"
class Driver {
 public:
  void Kick(Widget* w);
  void Jolt(Widget* w);
};
void Driver::Kick(Widget* w) {
  sim_->Schedule(10, [w] { w->count_ = 1; });
}
void Driver::Jolt(Widget* w) {
  sim_->Schedule(20, [w] { w->count_ = 2; });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": cross})
        self.assertEqual(code, 1)
        self.assertIn("Widget::count_", out)
        self.assertNotIn("Driver::count_", out)

    def test_racy_field_is_clean(self):
        racy_h = WIDGET_H.replace("int count_ = 0;",
                                  'sim::Racy<int> count_{"Widget.count"};')
        racy_cc = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] { count_ = 1; });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] { count_ = 2; });
}
"""
        code, out = run_scope({"src/fixture.h": racy_h,
                               "src/fixture.cc": racy_cc})
        self.assertEqual(code, 0, out)

    def test_constructor_writes_are_skipped(self):
        # Construction precedes publication; ctor writes cannot race
        # even when the ctor is reachable from several contexts.
        ctor = """\
#include "fixture.h"
Widget::Widget() { count_ = 7; }
Widget MakeWidget() { return Widget(); }
void Widget::Poke() {
  sim_->Schedule(10, [this] { MakeWidget(); });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] { MakeWidget(); });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": ctor})
        self.assertEqual(code, 0, out)

    def test_sync_algorithm_lambda_is_not_a_root(self):
        # A comparator runs synchronously inside its enclosing event; it
        # must not count as a second callback context.
        sync = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] { count_ = 1; });
}
void Widget::Prod() {
  std::sort(v.begin(), v.end(), [this](int a, int b) {
    count_ = a;
    return a < b;
  });
}
"""
        code, out = run_scope({"src/fixture.h": WIDGET_H,
                               "src/fixture.cc": sync})
        self.assertEqual(code, 0, out)


class SuppressionTest(unittest.TestCase):
    def test_inline_allow_with_reason_suppresses(self):
        h = WIDGET_H.replace(
            "  int count_ = 0;",
            "  // simscope:allow(S1): adjudicated by the epoch guard\n"
            "  int count_ = 0;")
        code, out = run_scope({"src/fixture.h": h,
                               "src/fixture.cc": TWO_ROOT_CC})
        self.assertEqual(code, 0, out)

    def test_inline_allow_without_reason_is_a_violation(self):
        h = WIDGET_H.replace(
            "  int count_ = 0;",
            "  // simscope:allow(S1)\n"
            "  int count_ = 0;")
        code, out = run_scope({"src/fixture.h": h,
                               "src/fixture.cc": TWO_ROOT_CC})
        self.assertEqual(code, 1)
        self.assertIn("without a reason", out)

    def test_stale_inline_allow_is_a_violation(self):
        # The allow sits on a line with nothing to suppress.
        h = WIDGET_H.replace(
            "  int dummy_ = 0;",
            "  // simscope:allow(S1): nothing here needs this\n"
            "  int dummy_ = 0;")
        annotated = TWO_ROOT_CC.replace(
            "[this] { count_ = 1; }",
            "[this] {\n    DPDPU_SIM_ACCESS(race_tag_, \"Widget\", 0,\n"
            "                     sim::AccessKind::kCommutativeWrite);\n"
            "    count_ = 1;\n  }").replace(
            "[this] { count_ = 2; }",
            "[this] {\n    DPDPU_SIM_ACCESS(race_tag_, \"Widget\", 0,\n"
            "                     sim::AccessKind::kCommutativeWrite);\n"
            "    count_ = 2;\n  }")
        code, out = run_scope({"src/fixture.h": h,
                               "src/fixture.cc": annotated})
        self.assertEqual(code, 1)
        self.assertIn("suppresses nothing", out)

    def test_allowlist_entry_suppresses(self):
        code, out = run_scope(
            {"src/fixture.h": WIDGET_H, "src/fixture.cc": TWO_ROOT_CC},
            allowlist="src/fixture.h S1:Widget::count_ epoch guard "
                      "adjudicates the interleavings\n")
        self.assertEqual(code, 0, out)

    def test_stale_allowlist_entry_is_a_violation(self):
        one_root = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] { count_ = 1; });
}
void Widget::Prod() {}
"""
        code, out = run_scope(
            {"src/fixture.h": WIDGET_H, "src/fixture.cc": one_root},
            allowlist="src/fixture.h S1:Widget::count_ was racy once\n")
        self.assertEqual(code, 1)
        self.assertIn("stale", out.lower())

    def test_allowlist_entry_without_reason_is_rejected(self):
        code, out = run_scope(
            {"src/fixture.h": WIDGET_H, "src/fixture.cc": TWO_ROOT_CC},
            allowlist="src/fixture.h S1:Widget::count_\n")
        self.assertNotEqual(code, 0)


ANNOTATED_CC = """\
#include "fixture.h"
void Widget::Poke() {
  sim_->Schedule(10, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    count_ = 1;
  });
}
void Widget::Prod() {
  sim_->Schedule(20, [this] {
    DPDPU_SIM_ACCESS(race_tag_, "Widget", 0,
                     sim::AccessKind::kCommutativeWrite);
    count_ = 2;
  });
}
"""


class XcheckTest(unittest.TestCase):
    def run_xcheck(self, observed_lines, allowlist=""):
        tmp = tempfile.mkdtemp(prefix="simscope_cov_")
        try:
            cov = os.path.join(tmp, "coverage.txt")
            with open(cov, "w") as f:
                f.write("".join(line + "\n" for line in observed_lines))
            return run_scope({"src/fixture.h": WIDGET_H,
                              "src/fixture.cc": ANNOTATED_CC},
                             extra_args=["--xcheck", "--coverage", cov],
                             allowlist=allowlist)
        finally:
            shutil.rmtree(tmp)

    def test_dead_annotation_fires_s2(self):
        code, out = self.run_xcheck([])
        self.assertEqual(code, 1)
        self.assertIn("S2", out)
        self.assertIn("Widget", out)

    def test_observed_annotation_is_clean(self):
        code, out = self.run_xcheck(["Widget"])
        self.assertEqual(code, 0, out)

    def test_s2_allowlist_entry_suppresses(self):
        code, out = self.run_xcheck(
            [],
            allowlist="src/fixture.cc S2:Widget only exercised by the "
                      "hardware-in-the-loop rig\n")
        self.assertEqual(code, 0, out)

    def test_missing_coverage_file_is_an_error(self):
        code, out = run_scope(
            {"src/fixture.h": WIDGET_H, "src/fixture.cc": ANNOTATED_CC},
            extra_args=["--xcheck", "--coverage", "/nonexistent/cov.txt"])
        self.assertNotEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
