#!/usr/bin/env python3
"""simscope — whole-program annotation-coverage analyzer for simrace.

simrace (DESIGN.md §7) only sees accesses that are annotated with
DPDPU_SIM_ACCESS or wrapped in sim::Racy; a race on an *unannotated*
shared field is invisible to the detector and never branched by simex's
DPOR. simscope closes that blind spot statically:

  1. It identifies every *callback context* — a lambda registered with
     Simulator::Schedule/ScheduleAt/Post, a PeriodicTask body, a MiniTCP
     or RPC completion handler, or any other lambda handed to a call
     that defers it — and treats each registration site as a scheduling
     provenance root.
  2. It walks name-resolved call-graph edges from each root and
     attributes every member-field (and namespace-scope global) write in
     reachable code to the roots that can reach it.
  3. A field written from >= 2 distinct roots is shared mutable state.
     simscope diffs that set against the declared annotation map
     (DPDPU_SIM_ACCESS / RaceChecker::RecordAccess sites and sim::Racy
     fields, with region coverage propagating down the call chain) and
     reports each uncovered field with its write sites and provenance
     chains (rule S1).
  4. With --xcheck it also diffs the *static* annotation map against the
     set of object names simrace *dynamically* observed (dumped via
     DPDPU_SIM_RACE_COVERAGE, see src/sim/simrace.cc): an annotation
     that is statically reachable from a callback context but never
     observed at runtime is dead weight or an untested path (rule S2).

Frontends (--frontend=auto|builtin|clang):
  * builtin — a dependency-free fuzzy C++ parser built on the shared
    lintcommon comment/string stripper. This is the tested, CI-gated
    path; it over-approximates roots (any deferred lambda is a root)
    and under-approximates coverage only where documented below.
  * clang — drives `clang -Xclang -ast-dump=json` over every TU in
    compile_commands.json and lowers the JSON AST into the same facts
    IR. Exact name resolution, but requires a clang binary; `auto`
    falls back to builtin when clang is missing.

Suppressions follow simlint policy exactly (shared via lintcommon):
inline `// simscope:allow(S1): reason` on the field declaration line
(or the line above), and file-level allowlist entries
`<path> S1:Class::field reason` (or bare `S1` for a whole file). Both
require a reason, and stale entries — an inline allow that suppresses
nothing, an allowlist entry whose file left the tree or whose finding
no longer fires — are themselves violations.
"""

import argparse
import glob
import json
import os
import re
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
import lintcommon  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
DEFAULT_ROOTS = ("src",)
DEFAULT_ALLOWLIST = os.path.join("tools", "simscope", "allowlist.txt")

RULES = {
    "S1": "shared-mutable field written from >=2 callback contexts "
          "without a simrace annotation on any path",
    "S2": "annotation statically reachable from a callback context but "
          "never dynamically observed (--xcheck)",
}

# Callees whose lambda argument runs synchronously inside the enclosing
# event — std:: algorithms and friends. A lambda passed to anything else
# is assumed deferred (callback registration): in a discrete-event
# codebase that over-approximation is the sound direction, because extra
# roots can only *add* fields to the shared set.
SYNC_CALLEES = frozenset("""
    sort stable_sort nth_element find_if find_if_not remove_if count_if
    any_of all_of none_of for_each transform accumulate reduce
    lower_bound upper_bound equal_range binary_search min_element
    max_element minmax_element partition stable_partition
    partition_point generate generate_n iota visit apply erase_if
    unique copy_if replace_if count find remove assert static_assert
""".split())

# Chain tails that read through to the element rather than naming a
# distinct member: `inflight_rpcs_.at(i)++` writes inflight_rpcs_.
ACCESSOR_TAILS = frozenset(["at", "front", "back", "top", "data"])

MUTATING_METHODS = frozenset("""
    push_back emplace_back emplace push pop insert erase clear pop_back
    pop_front resize assign reset swap Add Record Observe append
""".split())

CONTROL_KEYWORDS = frozenset("""
    if for while switch catch return sizeof alignof decltype new delete
    do else throw case default goto
""".split())

Violation = lintcommon.Violation


# ---------------------------------------------------------------------------
# Facts IR — both frontends lower to these records, the analysis below
# consumes only them.
# ---------------------------------------------------------------------------

class Field:
    """A member field declaration (or namespace-scope global)."""

    def __init__(self, cls, name, path, line, racy=False, type_text=""):
        self.cls = cls          # class simple name, or "<global>"
        self.name = name
        self.path = path        # repo-relative
        self.line = line
        self.racy = racy        # declared as sim::Racy<...>
        self.type_text = type_text  # raw declared type, for pointee lookup

    @property
    def key(self):
        return (self.cls, self.name)

    def __repr__(self):
        return f"{self.cls}::{self.name}@{self.path}:{self.line}"


class Region:
    """A unit of code ownership: a function body or a root-lambda body.

    Non-root lambdas (std::sort comparators etc.) do not get regions —
    their code belongs to the enclosing region, which is exactly the
    context it executes in.
    """

    def __init__(self, rid, kind, name, path, line, span, cls=None,
                 root=None):
        self.id = rid
        self.kind = kind        # "function" | "lambda"
        self.name = name        # qualified-ish name or "<lambda>"
        self.simple = name.rsplit("::", 1)[-1]
        self.path = path
        self.line = line
        self.span = span        # (start_offset, end_offset) in file
        self.cls = cls          # enclosing class simple name or None
        self.root = root        # (path, line, callee) when a context root
        self.calls = []         # callee simple names
        self.writes = []        # Write
        self.annotations = []   # Annotation
        self.var_types = {}     # local/param name -> class simple name

    def __repr__(self):
        return f"{self.kind} {self.name}@{self.path}:{self.line}"


class Write:
    def __init__(self, field_key, path, line, snippet):
        self.field_key = field_key  # (cls, name)
        self.path = path
        self.line = line
        self.snippet = snippet


class Annotation:
    def __init__(self, object_name, path, line):
        self.object_name = object_name
        self.path = path
        self.line = line


class Facts:
    """Whole-program facts, merged across files/TUs."""

    def __init__(self):
        self.fields = {}        # (cls, name) -> Field (first decl wins)
        self.regions = []       # Region
        self.racy_names = set() # object names from sim::Racy field inits
        self._class_names = None

    def add_field(self, field):
        self.fields.setdefault(field.key, field)
        if field.racy:
            self.fields[field.key].racy = True
        self._class_names = None

    def class_of_type(self, type_text):
        """Known class named in a declared type, or None (`Fleet*` ->
        Fleet, `std::shared_ptr<CatchUpJob>` -> CatchUpJob)."""
        if self._class_names is None:
            self._class_names = {cls for cls, _ in self.fields}
        for tok in re.findall(r"[A-Za-z_]\w*", type_text):
            if tok in self._class_names:
                return tok
        return None

    def functions_by_simple_name(self):
        index = {}
        for r in self.regions:
            if r.kind == "function":
                index.setdefault(r.simple, []).append(r)
        return index


# ---------------------------------------------------------------------------
# Builtin frontend: a fuzzy, dependency-free C++ parser. Works on the
# comment/string-stripped text (lintcommon) so regexes never match
# prose; line structure is preserved so offsets map back to real lines.
# ---------------------------------------------------------------------------

CLASS_RE = re.compile(r"\b(class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?"
                      r"(?:alignas\s*\([^)]*\)\s*)?"
                      r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*"
                      r"(?:final\s*)?(?::[^{;]*)?\{")
FUNC_NAME_RE = re.compile(r"([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
LAMBDA_RE = re.compile(r"\[")
CHAIN = r"(?:[A-Za-z_]\w*(?:\s*(?:->|\.)\s*))*[A-Za-z_]\w*"
CALLARGS = r"(?:\((?:[^()]|\([^()]*\))*\))?"
WRITE_RES = [
    # ++x / --x (possibly through .at(...))
    re.compile(rf"(\+\+|--)\s*({CHAIN}){CALLARGS}"),
    # x++ / x--
    re.compile(rf"({CHAIN}){CALLARGS}\s*(\+\+|--)"),
    # x = / x += / ... (not ==, <=, >=, !=)
    re.compile(rf"({CHAIN}){CALLARGS}(?:\[[^\]]*\])?\s*"
               r"(=(?![=])|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=)"),
    # x.push_back(...) and other mutating methods
    re.compile(rf"({CHAIN})\s*\.\s*({'|'.join(sorted(MUTATING_METHODS))})"
               r"\s*\("),
]
ANNOT_RE = re.compile(
    r"(?:DPDPU_SIM_ACCESS|RecordAccess)\s*\(\s*[^,]*,\s*\"([^\"]+)\"")
RACY_DECL_RE = re.compile(
    r"Racy\s*<[^;>]*>\s*([A-Za-z_]\w*)\s*[{(]\s*\"([^\"]+)\"")
CALL_RE = re.compile(r"(?<![\w.>])([A-Za-z_]\w*)\s*\(")
NOT_FIELD_STMT = re.compile(
    r"^\s*(using|typedef|friend|namespace|template|public|private|"
    r"protected|static_assert|enum|return|#)")


def _line_of(text, offset, line_starts):
    import bisect
    return bisect.bisect_right(line_starts, offset)


def _line_starts(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts[:-1] if text.endswith("\n") else starts


def _match_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _match_bracket(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class BuiltinFrontend:
    def __init__(self, repo_root, verbose=False):
        self.repo_root = repo_root
        self.verbose = verbose
        self._next_region = 0

    def parse_tree(self, roots, facts):
        # Two phases: field/global declarations for the whole tree first
        # (writes in foo.cc routinely target fields declared in bar.h),
        # then regions/writes/calls/annotations.
        files = []
        for full in lintcommon.collect_files(self.repo_root, roots):
            rel = os.path.relpath(full, self.repo_root)
            with open(full) as f:
                raw = f.read()
            files.append((rel, raw))
        prepared = [(rel, raw, self.parse_decls(rel, raw, facts))
                    for rel, raw in files]
        for rel, raw, structure in prepared:
            self.parse_uses(rel, raw, structure, facts)

    # -- per-file ----------------------------------------------------------

    def parse_decls(self, rel, raw, facts):
        """Phase 1: classes, member fields, globals. Returns the file
        structure (stripped text, class/function/lambda spans) so phase
        2 doesn't re-parse."""
        stripped = lintcommon.strip_comments_and_strings(raw)
        line_starts = _line_starts(stripped)

        def line_of(off):
            return _line_of(stripped, off, line_starts)

        classes = self._find_classes(stripped, line_of)        # [(name, span)]
        functions = self._find_functions(stripped, classes, line_of)
        lambdas = self._find_lambdas(stripped, line_of)

        # Member fields: statements at class-body level, outside any
        # function body and outside nested class bodies.
        func_spans = [f[3] for f in functions]
        self._find_fields(stripped, raw, rel, classes, func_spans,
                          line_of, facts)
        self._find_globals(stripped, rel, classes, func_spans,
                           line_of, facts)
        return (stripped, line_starts, classes, functions, lambdas)

    def parse_uses(self, rel, raw, structure, facts):
        """Phase 2: regions, writes, calls, annotations."""
        stripped, line_starts, classes, functions, lambdas = structure

        def line_of(off):
            return _line_of(stripped, off, line_starts)

        def innermost_class(off):
            best = None
            for name, (s, e) in classes:
                if s <= off < e and (best is None or s > best[1][0]):
                    best = (name, (s, e))
            return best[0] if best else None

        # Regions: every function; every *root* lambda.
        regions = []
        for name, cls, line, span in functions:
            regions.append(Region(self._rid(), "function", name, rel,
                                  line, span, cls=cls))
        for line, span, callee, is_root in lambdas:
            if not is_root:
                continue
            cls = innermost_class(span[0])
            regions.append(Region(
                self._rid(), "lambda", f"<lambda {rel}:{line}>", rel,
                line, span, cls=cls, root=(rel, line, callee)))

        # Innermost-region attribution. Bodies nest properly, so the
        # innermost region containing an offset is the one with the
        # largest start <= off whose end covers it: bisect + short
        # backward walk instead of a linear scan per lookup.
        import bisect
        regions_sorted = sorted(regions, key=lambda r: r.span[0])
        starts = [r.span[0] for r in regions_sorted]

        def innermost_region(off):
            i = bisect.bisect_right(starts, off) - 1
            while i >= 0:
                r = regions_sorted[i]
                if r.span[0] <= off < r.span[1]:
                    return r
                i -= 1
            return None

        # Local type inference: function params + locals first, then
        # lambdas inherit from the innermost enclosing region (captures).
        class_names = {name for name, _ in classes} | set(
            k[0] for k in facts.fields)
        for r in regions:
            self._infer_var_types(stripped, r, class_names, facts)
        for r in sorted(regions, key=lambda r: r.span[0]):
            if r.kind != "lambda":
                continue
            outer = None
            for o in regions_sorted:
                s, e = o.span
                if s < r.span[0] and r.span[1] <= e and o is not r:
                    if outer is None or s > outer.span[0]:
                        outer = o
            if outer is not None:
                inherited = dict(outer.var_types)
                inherited.update(r.var_types)
                r.var_types = inherited
                if r.cls is None:
                    r.cls = outer.cls

        self._find_writes(stripped, rel, line_of, innermost_region, facts)
        self._find_calls(stripped, rel, line_of, innermost_region, facts)
        self._find_annotations(raw, rel, innermost_region, facts,
                               line_starts)

        facts.regions.extend(regions)

    def _rid(self):
        self._next_region += 1
        return self._next_region

    # -- structure ---------------------------------------------------------

    def _find_classes(self, stripped, line_of):
        classes = []
        for m in CLASS_RE.finditer(stripped):
            before = stripped[max(0, m.start() - 16):m.start()]
            if re.search(r"\benum\s*$", before):
                continue
            open_idx = stripped.index("{", m.end() - 1)
            end = lintcommon.match_brace(stripped, open_idx)
            # Out-of-line nested definitions (`struct Outer::Inner {`)
            # belong to the innermost name; fields resolved through a
            # pointer to Inner must not land on Outer.
            classes.append((m.group(2).split("::")[-1], (open_idx, end)))
        return classes

    def _find_functions(self, stripped, classes, line_of):
        """[(qualified_name, enclosing_class, line, (body_start, body_end))]"""
        functions = []
        for m in FUNC_NAME_RE.finditer(stripped):
            name = re.sub(r"\s+", "", m.group(1))
            simple = name.rsplit("::", 1)[-1].lstrip("~")
            if simple in CONTROL_KEYWORDS or not simple:
                continue
            # Method calls (x.f(...), x->f(...)) are not definitions.
            prev = stripped[:m.start()].rstrip()
            if prev.endswith((".", "->", "&", "=", "(", ",", "!", "<",
                              ">", "+", "-", "*", "/", "%", "|", "^",
                              "::", "return")):
                continue
            close = _match_paren(stripped, stripped.index("(", m.start()))
            body = self._body_after_signature(stripped, close)
            if body is None:
                continue
            open_idx, end = body
            cls = None
            for cname, (s, e) in classes:
                if s <= m.start() < e and (cls is None):
                    cls = cname
                elif s <= m.start() < e:
                    cls = cname  # innermost wins (later = inner)
            if "::" in name:
                cls = name.rsplit("::", 2)[-2]
            qual = name if "::" in name else (
                f"{cls}::{name}" if cls else name)
            functions.append((qual, cls, line_of(m.start()),
                              (open_idx, end)))
        return functions

    def _body_after_signature(self, stripped, pos):
        """After the closing ')' of a signature: skip qualifiers and a
        constructor init-list; return the body span or None."""
        i = pos
        n = len(stripped)
        while i < n:
            while i < n and stripped[i] in " \t\n":
                i += 1
            if i >= n:
                return None
            c = stripped[i]
            if c == "{":
                return (i, lintcommon.match_brace(stripped, i))
            if c == ";":
                return None
            m = re.match(r"(const|noexcept|override|final|mutable|&&|&)",
                         stripped[i:])
            if m:
                i += m.end()
                continue
            if stripped.startswith("->", i):  # trailing return type
                m2 = re.match(r"->\s*[\w:<>,\s*&]+", stripped[i:])
                if not m2:
                    return None
                i += m2.end()
                continue
            if c == ":":  # constructor init list
                i += 1
                while i < n:
                    while i < n and stripped[i] in " \t\n,":
                        i += 1
                    m3 = re.match(r"[A-Za-z_][\w:<>]*", stripped[i:])
                    if not m3:
                        break
                    i += m3.end()
                    while i < n and stripped[i] in " \t\n":
                        i += 1
                    if i < n and stripped[i] == "(":
                        i = _match_paren(stripped, i)
                    elif i < n and stripped[i] == "{":
                        i = lintcommon.match_brace(stripped, i)
                    else:
                        return None
                    while i < n and stripped[i] in " \t\n":
                        i += 1
                    if i < n and stripped[i] == ",":
                        continue
                    break
                while i < n and stripped[i] in " \t\n":
                    i += 1
                if i < n and stripped[i] == "{":
                    return (i, lintcommon.match_brace(stripped, i))
                return None
            return None
        return None

    def _find_lambdas(self, stripped, line_of):
        """[(line, body_span, root_callee_or_None, is_root)]"""
        out = []
        for m in LAMBDA_RE.finditer(stripped):
            i = m.start()
            prev = stripped[:i].rstrip()
            if prev and prev[-1] not in "({,=;&|!<>?:+-*%" and not \
                    prev.endswith("return"):
                continue  # subscript or attribute, not a lambda intro
            if stripped.startswith("[[", i) or prev.endswith("["):
                continue  # [[attribute]]
            cap_end = _match_bracket(stripped, i)
            j = cap_end
            n = len(stripped)
            while j < n and stripped[j] in " \t\n":
                j += 1
            if j < n and stripped[j] == "(":
                j = _match_paren(stripped, j)
            while j < n:
                m2 = re.match(r"\s*(mutable|constexpr|noexcept)", stripped[j:])
                if not m2:
                    break
                j += m2.end()
            m3 = re.match(r"\s*->\s*[\w:<>,\s*&]+?(?=\s*\{)", stripped[j:])
            if m3:
                j += m3.end()
            while j < n and stripped[j] in " \t\n":
                j += 1
            if j >= n or stripped[j] != "{":
                continue
            span = (j, lintcommon.match_brace(stripped, j))
            callee, is_root = self._lambda_rootness(stripped, i, prev)
            out.append((line_of(i), span, callee, is_root))
        return out

    def _lambda_rootness(self, stripped, intro_idx, prev):
        """Is this lambda a callback-context root, and via which callee?

        A lambda literal that is (a) an argument to a call whose callee
        is not a known-synchronous algorithm, (b) assigned to anything
        other than a fresh `auto` local, or (c) returned, is a root: it
        will run later, in an event context of its own.
        """
        last = prev[-1] if prev else ""
        if prev.endswith("return"):
            return ("return", True)
        if last in "(,":
            # Walk back to the opening paren of the enclosing call.
            depth = 0
            k = len(prev) - 1
            if last == ",":
                while k >= 0:
                    c = prev[k]
                    if c == ")":
                        depth += 1
                    elif c == "(":
                        if depth == 0:
                            break
                        depth -= 1
                    k -= 1
            head = prev[:k].rstrip() if k >= 0 else ""
            m = re.search(r"([A-Za-z_]\w*)\s*$", head)
            callee = m.group(1) if m else "<call>"
            return (callee, callee not in SYNC_CALLEES)
        if last == "=" and not prev.endswith(("==", "!=", "<=", ">=")):
            target = prev[:-1].rstrip()
            if re.search(r"\bauto\s*[&*]?\s*\w+$", target):
                return ("local", False)
            return ("assign", True)
        return (None, False)

    # -- declarations ------------------------------------------------------

    def _find_fields(self, stripped, raw, rel, classes, func_spans,
                     line_of, facts):
        for cname, (s, e) in classes:
            excluded = [sp for sp in func_spans if s < sp[0] < e]
            excluded += [(cs, ce) for _, (cs, ce) in classes
                         if s < cs and ce <= e]
            for stmt, off in self._class_statements(stripped, s + 1, e - 1,
                                                    excluded):
                self._field_from_statement(stmt, off, cname, rel, raw,
                                           line_of, facts)

    def _class_statements(self, stripped, start, end, excluded):
        """Yield (text, offset) of ';'-terminated statements at class-body
        depth, with nested function/class spans blanked out."""
        buf = []
        stmt_start = None
        depth = 0
        i = start
        while i < end:
            inside = next((sp for sp in excluded if sp[0] <= i < sp[1]),
                          None)
            if inside:
                i = inside[1]
                buf.append(" ")
                continue
            c = stripped[i]
            if stmt_start is None and not c.isspace():
                stmt_start = i
            if c in "({[":
                depth += 1
            elif c in ")}]":
                depth -= 1
            elif c == ";" and depth == 0:
                yield ("".join(buf), stmt_start if stmt_start is not None
                       else i)
                buf = []
                stmt_start = None
                i += 1
                continue
            buf.append(c)
            i += 1

    def _field_from_statement(self, stmt, off, cname, rel, raw, line_of,
                              facts):
        flat = " ".join(stmt.split())
        # An access label glues onto the first declaration after it
        # (`private: int count_ = 0`); peel it or the declaration is
        # invisible.
        flat = re.sub(r"^(?:public|private|protected)\s*:\s*", "", flat)
        if not flat or NOT_FIELD_STMT.match(flat):
            return
        # Strip a trailing initializer.
        m = re.match(r"(.*?)\s*=\s*[^=].*$", flat)
        decl = m.group(1) if m else flat
        decl = re.sub(r"\{[^{}]*\}\s*$", "", decl).rstrip()
        decl = re.sub(r"\[[^\]]*\]\s*$", "", decl).rstrip()
        if not decl or decl.endswith(")"):
            return  # function declaration
        m = re.search(r"([A-Za-z_]\w*)$", decl)
        if not m:
            return
        name = m.group(1)
        if name in CONTROL_KEYWORDS or decl == name:
            return  # no type before the name
        head = decl[:m.start()].strip()
        if not head or head.split()[-1] in ("operator",):
            return
        racy = "Racy<" in flat or "Racy <" in flat
        facts.add_field(Field(cname, name, rel, line_of(off), racy=racy,
                              type_text=head))
        # Racy fields brace-initialized with their object name register
        # that name in the dynamic coverage universe.
        line0 = line_of(off)
        raw_line = raw.splitlines()[line0 - 1] if line0 <= len(
            raw.splitlines()) else ""
        rm = RACY_DECL_RE.search(raw_line)
        if rm:
            facts.racy_names.add(rm.group(2))

    def _find_globals(self, stripped, rel, classes, func_spans, line_of,
                      facts):
        spans = [sp for _, sp in classes] + list(func_spans)
        for m in re.finditer(
                r"^[ \t]*(?:static\s+)?(?!const\b|constexpr\b|using\b|"
                r"typedef\b|namespace\b|class\b|struct\b|enum\b|"
                r"template\b|return\b|extern\b)"
                r"[A-Za-z_][\w:<>,\s*&]*?\s+([A-Za-z_]\w*)\s*(?:=[^;=]*)?;",
                stripped, re.M):
            off = m.start()
            if any(s <= off < e for s, e in spans):
                continue
            name = m.group(1)
            if not re.match(r"g_|[A-Za-z_]\w*_$", name):
                continue  # only convention-named globals; keeps noise out
            facts.add_field(Field("<global>", name, rel, line_of(off)))

    VAR_PTR_RE = re.compile(
        r"\b([A-Za-z_]\w*)\s*[*&]\s*(?:const\s+)?([A-Za-z_]\w*)\s*[,)=;{]")
    VAR_SMART_RE = re.compile(
        r"\b(?:shared_ptr|unique_ptr|weak_ptr)\s*<\s*([A-Za-z_]\w*)\s*>"
        r"\s*&?\s*(?:const\s+)?([A-Za-z_]\w*)")
    VAR_MAKE_RE = re.compile(
        r"\b([A-Za-z_]\w*)\s*=\s*(?:std\s*::\s*)?make_shared\s*<\s*"
        r"([A-Za-z_]\w*)\s*>")
    VAR_SELF_RE = re.compile(
        r"\bauto\s+([A-Za-z_]\w*)\s*=\s*(?:this\s*->\s*)?"
        r"shared_from_this\s*\(")

    def _infer_var_types(self, stripped, region, class_names, facts):
        s, e = region.span
        # Include the signature line(s) just before the body for params.
        sig_start = max(0, stripped.rfind("\n", 0, max(0, s - 400)))
        text = stripped[sig_start:e]
        for vm in self.VAR_PTR_RE.finditer(text):
            if vm.group(1) in class_names:
                region.var_types[vm.group(2)] = vm.group(1)
        for vm in self.VAR_SMART_RE.finditer(text):
            if vm.group(1) in class_names:
                region.var_types[vm.group(2)] = vm.group(1)
        for vm in self.VAR_MAKE_RE.finditer(text):
            if vm.group(2) in class_names:
                region.var_types[vm.group(1)] = vm.group(2)
        if region.cls:
            for vm in self.VAR_SELF_RE.finditer(text):
                region.var_types[vm.group(1)] = region.cls

    # -- uses --------------------------------------------------------------

    def _find_writes(self, stripped, rel, line_of, innermost_region,
                     facts):
        seen = set()
        for wre in WRITE_RES:
            for m in wre.finditer(stripped):
                groups = [g for g in m.groups() if g]
                chain = next((g for g in groups
                              if re.match(r"[A-Za-z_]", g)), None)
                if chain is None:
                    continue
                off = m.start()
                region = innermost_region(off)
                if region is None:
                    continue
                key = self._resolve_chain(chain, region, facts)
                if key is None:
                    continue
                site = (key, rel, line_of(off))
                if site in seen:
                    continue
                seen.add(site)
                region.writes.append(Write(
                    key, rel, line_of(off),
                    " ".join(m.group(0).split())[:60]))

    def _resolve_chain(self, chain, region, facts):
        """(class, field) a chained write mutates, or None.

        `a->b.c` mutates field b of a's pointee; `a.b.c` mutates field a
        of the enclosing object: the written field is the first
        component after the *last* `->` (value sub-paths write through
        the containing subobject).
        """
        toks = [t.strip() for t in re.split(r"(->|\.)", chain)]
        parts = toks[0::2]
        seps = toks[1::2]  # sep[i] sits between parts[i] and parts[i+1]
        if parts and parts[0] == "this":
            parts = parts[1:]
            seps = seps[1:]
        while len(parts) > 1 and parts[-1] in (ACCESSOR_TAILS |
                                               MUTATING_METHODS):
            parts = parts[:-1]
            seps = seps[:-1]
        if not parts:
            return None
        if "->" not in seps:
            head = parts[0]
            if region.cls and (region.cls, head) in facts.fields:
                return (region.cls, head)
            if ("<global>", head) in facts.fields:
                return ("<global>", head)
            return None
        # Resolve the class owning the component after the last '->'.
        last = len(seps) - 1 - seps[::-1].index("->")
        cur = None  # class of parts[i] as a pointee/value type
        for i in range(last + 1):
            name = parts[i]
            if i == 0:
                cur = region.var_types.get(name)
                if cur is None:
                    owner = None
                    if region.cls and (region.cls, name) in facts.fields:
                        owner = (region.cls, name)
                    elif ("<global>", name) in facts.fields:
                        owner = ("<global>", name)
                    if owner is None:
                        return None
                    cur = facts.class_of_type(
                        facts.fields[owner].type_text)
            else:
                if cur is None or (cur, name) not in facts.fields:
                    return None
                cur = facts.class_of_type(facts.fields[(cur, name)]
                                          .type_text)
            if cur is None:
                return None
        written = parts[last + 1]
        if (cur, written) in facts.fields:
            return (cur, written)
        return None

    MEMBER_CALL_RE = re.compile(
        r"(?:([A-Za-z_]\w*)\s*)?(?:->|\.)\s*([A-Za-z_]\w*)\s*\(")

    def _find_calls(self, stripped, rel, line_of, innermost_region,
                    facts):
        """Call edges are (receiver_class_or_None, simple_name): a
        resolvable receiver restricts the edge to that class's method,
        everything else falls back to every same-named definition."""
        for m in CALL_RE.finditer(stripped):
            name = m.group(1)
            if name in CONTROL_KEYWORDS:
                continue
            region = innermost_region(m.start())
            if region is not None:
                # A bare call inside a method prefers the own-class
                # overload when one exists.
                region.calls.append((region.cls, name))
        for m in self.MEMBER_CALL_RE.finditer(stripped):
            recv, name = m.group(1), m.group(2)
            if name in CONTROL_KEYWORDS:
                continue
            region = innermost_region(m.start())
            if region is None:
                continue
            cls = None
            if recv == "this":
                cls = region.cls
            elif recv:
                cls = region.var_types.get(recv)
                if cls is None and region.cls and \
                        (region.cls, recv) in facts.fields:
                    cls = facts.class_of_type(
                        facts.fields[(region.cls, recv)].type_text)
            region.calls.append((cls, name))

    def _find_annotations(self, raw, rel, innermost_region, facts,
                          line_starts):
        # Annotations carry their object name in a string literal, so
        # they are matched on the raw text; offsets still line up with
        # the stripped text because stripping preserves layout.
        for m in ANNOT_RE.finditer(raw):
            if "define" in raw[max(0, m.start() - 80):m.start()]:
                continue  # the macro definition itself
            region = innermost_region(m.start())
            line = _line_of(raw, m.start(), line_starts)
            ann = Annotation(m.group(1), rel, line)
            if region is not None:
                region.annotations.append(ann)
        for m in RACY_DECL_RE.finditer(raw):
            facts.racy_names.add(m.group(2))


# ---------------------------------------------------------------------------
# Clang frontend: lowers `clang -Xclang -ast-dump=json` output into the
# same facts IR. Exact where the builtin frontend is fuzzy (overload
# resolution, receiver types), but requires a clang binary. Macros are
# expanded in the AST, so annotations appear as RecordAccess member
# calls with a string-literal object argument.
# ---------------------------------------------------------------------------

class ClangFrontend:
    WRITE_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
                 "<<=", ">>="}

    def __init__(self, repo_root, compile_commands, clang="clang",
                 verbose=False):
        self.repo_root = repo_root
        self.compile_commands = compile_commands
        self.clang = clang
        self.verbose = verbose
        self._next_region = 0

    def parse_tree(self, roots, facts):
        with open(self.compile_commands) as f:
            commands = json.load(f)
        prefixes = [os.path.join(self.repo_root, r) for r in roots]
        for entry in commands:
            src = os.path.join(entry.get("directory", ""), entry["file"])
            src = os.path.normpath(src)
            if not any(src.startswith(p) for p in prefixes):
                continue
            self._parse_tu(entry, src, facts)

    def _parse_tu(self, entry, src, facts):
        argv = entry.get("arguments") or entry["command"].split()
        args = [a for a in argv[1:]
                if a.startswith(("-I", "-D", "-std", "-W")) or
                a in ("-pthread",)]
        cmd = [self.clang, "-fsyntax-only", "-Xclang", "-ast-dump=json",
               *args, src]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  cwd=entry.get("directory",
                                                self.repo_root))
            tree = json.loads(proc.stdout)
        except (OSError, json.JSONDecodeError) as e:
            raise SystemExit(f"simscope: clang frontend failed on "
                             f"{src}: {e}")
        self._walk(tree, facts, src, cls=None, region=None, file=[None])

    def _rid(self):
        self._next_region += 1
        return self._next_region

    def _loc(self, node, file_state):
        loc = node.get("loc") or {}
        sp = loc.get("spellingLoc") or loc
        if sp.get("file"):
            file_state[0] = sp["file"]
        return (file_state[0], sp.get("line", 0))

    def _rel(self, path):
        if path and os.path.isabs(path):
            try:
                return os.path.relpath(path, self.repo_root)
            except ValueError:
                return path
        return path or "<unknown>"

    def _walk(self, node, facts, src, cls, region, file):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        path, line = self._loc(node, file)
        rel = self._rel(path)

        if kind == "CXXRecordDecl" and node.get("completeDefinition"):
            cname = node.get("name") or cls
            for child in node.get("inner", []):
                if child.get("kind") == "FieldDecl":
                    fpath, fline = self._loc(child, file)
                    ftype = (child.get("type") or {}).get("qualType", "")
                    facts.add_field(Field(
                        cname, child.get("name", ""), self._rel(fpath),
                        fline, racy="Racy<" in ftype))
            cls = cname
        elif kind == "VarDecl" and region is None and cls is None:
            ftype = (node.get("type") or {}).get("qualType", "")
            if "const" not in ftype and node.get("name"):
                facts.add_field(Field("<global>", node["name"], rel, line))
        elif kind in ("CXXMethodDecl", "FunctionDecl", "CXXConstructorDecl",
                      "CXXDestructorDecl") and node.get("inner"):
            has_body = any(c.get("kind") == "CompoundStmt"
                           for c in node.get("inner", []))
            if has_body:
                name = node.get("name", "<anon>")
                qual = f"{cls}::{name}" if cls else name
                region = Region(self._rid(), "function", qual, rel, line,
                                (0, 0), cls=cls)
                facts.regions.append(region)
        elif kind == "LambdaExpr":
            # Rootness is decided by the registration context; the
            # parent CallExpr handler rewrites root below. Default:
            # treat as root (over-approximation, same as builtin).
            region = Region(self._rid(), "lambda",
                            f"<lambda {rel}:{line}>", rel, line, (0, 0),
                            cls=cls, root=(rel, line,
                                           node.get("_callee", "call")))
            facts.regions.append(region)
        elif kind == "CallExpr" or kind == "CXXMemberCallExpr":
            callee = self._callee_name(node)
            if region is not None and callee:
                region.calls.append((None, callee))
            if callee == "RecordAccess":
                name = self._string_arg(node)
                if name and region is not None:
                    region.annotations.append(Annotation(name, rel, line))
            # Tag lambda arguments with the callee for rootness.
            for child in node.get("inner", []) or []:
                for lam in self._find_lambda(child):
                    lam["_callee"] = callee or "call"
                    if callee in SYNC_CALLEES:
                        lam["_sync"] = True
        elif kind in ("BinaryOperator", "CompoundAssignOperator") and \
                node.get("opcode") in self.WRITE_OPS:
            self._record_member_write(node, facts, region, rel, line, file)
        elif kind == "UnaryOperator" and node.get("opcode") in (
                "++", "--"):
            self._record_member_write(node, facts, region, rel, line, file)

        for child in node.get("inner", []) or []:
            self._walk(child, facts, src, cls, region, file)

    def _find_lambda(self, node, depth=0):
        if not isinstance(node, dict) or depth > 3:
            return
        if node.get("kind") == "LambdaExpr":
            yield node
            return
        for child in node.get("inner", []) or []:
            yield from self._find_lambda(child, depth + 1)

    def _callee_name(self, node):
        inner = node.get("inner") or []
        if not inner:
            return None
        head = inner[0]
        while isinstance(head, dict):
            if head.get("kind") in ("DeclRefExpr", "MemberExpr"):
                ref = head.get("referencedDecl") or {}
                return ref.get("name") or head.get("name")
            nxt = (head.get("inner") or [None])[0]
            if nxt is None:
                return None
            head = nxt
        return None

    def _string_arg(self, node):
        for child in node.get("inner", []) or []:
            if child.get("kind") == "StringLiteral":
                v = child.get("value", "")
                return v.strip('"')
            found = self._string_arg(child)
            if found:
                return found
        return None

    def _record_member_write(self, node, facts, region, rel, line, file):
        if region is None:
            return
        target = (node.get("inner") or [None])[0]
        member = self._outer_member(target)
        if member is None:
            return
        cls, name = member
        if (cls, name) in facts.fields:
            region.writes.append(Write((cls, name), rel, line,
                                       f"{cls}::{name}"))

    def _outer_member(self, node):
        """Outermost MemberExpr on the write target → (class, field)."""
        while isinstance(node, dict):
            if node.get("kind") == "MemberExpr":
                ref = node.get("referencedDecl") or {}
                name = ref.get("name") or node.get("name", "")
                qual = (node.get("type") or {}).get("qualType", "")
                base = (node.get("inner") or [None])[0]
                cls = None
                while isinstance(base, dict):
                    bq = (base.get("type") or {}).get("qualType", "")
                    m = re.search(r"(\w+)\s*(?:\*|&)?\s*$",
                                  bq.replace("const", ""))
                    if m:
                        cls = m.group(1)
                        break
                    base = (base.get("inner") or [None])[0]
                if name:
                    return (cls, name.lstrip("~"))
                return None
            node = (node.get("inner") or [None])[0]
        return None


# ---------------------------------------------------------------------------
# Analysis: provenance attribution, coverage closure, findings.
# ---------------------------------------------------------------------------

class FieldReport:
    def __init__(self, field):
        self.field = field
        self.roots = {}       # root tuple -> provenance chain [Region names]
        self.writes = []      # (Write, region, covered, roots_for_write)


def analyze(facts):
    """Returns (field_reports, reachable_annotations, covered_regions)."""
    by_name = facts.functions_by_simple_name()
    by_qual = {}
    for r in facts.regions:
        if r.kind == "function" and r.cls:
            by_qual.setdefault((r.cls, r.simple), []).append(r)
    roots = [r for r in facts.regions if r.root is not None]

    def targets_of(edge):
        cls, name = edge
        if cls is not None:
            exact = by_qual.get((cls, name))
            if exact:
                return exact
        return by_name.get(name, ())

    # Reachability from each root, with predecessor chains for reports.
    reach = {}       # root region id -> {function region id: parent region}
    for root in roots:
        seen = {}
        frontier = [(root, None)]
        visited_ids = {root.id}
        while frontier:
            cur, parent = frontier.pop()
            for edge in cur.calls:
                for target in targets_of(edge):
                    if target.id in visited_ids:
                        continue
                    visited_ids.add(target.id)
                    seen[target.id] = cur
                    frontier.append((target, cur))
        reach[root.id] = seen

    # Coverage closure: a region containing an annotation covers itself
    # and everything it (transitively) calls — an annotation at a public
    # entry covers the callees on that path.
    covered = set()
    frontier = [r for r in facts.regions if r.annotations]
    covered.update(r.id for r in frontier)
    while frontier:
        cur = frontier.pop()
        for edge in cur.calls:
            for target in targets_of(edge):
                if target.id not in covered:
                    covered.add(target.id)
                    frontier.append(target)

    regions_by_id = {r.id: r for r in facts.regions}
    reports = {}
    for region in facts.regions:
        # Constructor/destructor writes precede (follow) publication of
        # the object and cannot race; skipping them is the standard
        # vacuous-before-sharing escape.
        if region.kind == "function" and region.cls and \
                region.simple.lstrip("~") == region.cls:
            continue
        for w in region.writes:
            field = facts.fields.get(w.field_key)
            if field is None:
                continue
            touching = []
            for root in roots:
                if region is root or region.id in reach[root.id]:
                    touching.append(root)
            if not touching:
                continue
            rep = reports.setdefault(field.key, FieldReport(field))
            is_covered = field.racy or region.id in covered
            rep.writes.append((w, region, is_covered, touching))
            for root in touching:
                if root.root in rep.roots:
                    continue
                chain = []
                cur = region
                guard = 0
                while cur is not None and cur is not root and guard < 32:
                    chain.append(cur.name)
                    cur = reach[root.id].get(cur.id)
                    guard += 1
                chain.append(f"{root.root[2]}@{root.root[0]}:"
                             f"{root.root[1]}")
                rep.roots[root.root] = list(reversed(chain))

    # Statically-reachable annotations (for --xcheck): annotation sits
    # in a root or in a function reachable from one.
    reachable_ids = set()
    for root in roots:
        reachable_ids.add(root.id)
        reachable_ids.update(reach[root.id])
    reachable_annotations = []
    for region in facts.regions:
        if region.id in reachable_ids:
            reachable_annotations.extend(region.annotations)

    return reports, reachable_annotations, covered


def s1_findings(reports):
    findings = []
    for key in sorted(reports):
        rep = reports[key]
        if len(rep.roots) < 2:
            continue
        uncovered = [(w, rg) for (w, rg, cov, _) in rep.writes if not cov]
        if not uncovered:
            continue
        cls, name = key
        lines = [f"unannotated shared-mutable field {cls}::{name} "
                 f"(declared {rep.field.path}:{rep.field.line}) is "
                 f"written from {len(rep.roots)} callback contexts with "
                 f"no DPDPU_SIM_ACCESS/sim::Racy on the path:"]
        for w, rg in uncovered[:6]:
            lines.append(f"    write {w.path}:{w.line}  `{w.snippet}` "
                         f"in {rg.name}")
        for root_key in sorted(rep.roots)[:4]:
            chain = rep.roots[root_key]
            lines.append("    via " + " -> ".join(chain))
        findings.append((rep.field, f"{cls}::{name}",
                         "\n".join(lines)))
    return findings


def s2_findings(reachable_annotations, racy_names, observed):
    by_name = {}
    for ann in reachable_annotations:
        by_name.setdefault(ann.object_name, ann)
    findings = []
    for name in sorted(set(by_name) - observed):
        ann = by_name[name]
        findings.append((ann, name,
                         f"annotation object \"{name}\" "
                         f"({ann.path}:{ann.line}) is statically "
                         f"reachable from a callback context but was "
                         f"never observed dynamically — dead annotation "
                         f"or untested path"))
    for name in sorted(racy_names - observed - set(by_name)):
        findings.append((None, name,
                         f"sim::Racy object \"{name}\" was never "
                         f"observed dynamically — dead annotation or "
                         f"untested path"))
    return findings


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def load_observed(paths):
    observed = set()
    for pattern in paths:
        matches = glob.glob(pattern)
        if not matches:
            raise SystemExit(
                f"simscope: --coverage file not found: {pattern}")
        for p in matches:
            with open(p) as f:
                for line in f:
                    line = line.strip()
                    if line and not line.startswith("#"):
                        observed.add(line)
    return observed


def validate_rule(rule):
    base = rule.split(":", 1)[0]
    if base not in RULES:
        return (f"unknown rule {rule!r} (rules: "
                f"{', '.join(sorted(RULES))})")
    return None


def pick_frontend(choice, repo_root, compile_commands, verbose):
    if choice == "clang" or (choice == "auto" and shutil.which("clang")
                             and compile_commands and
                             os.path.exists(compile_commands)):
        if not shutil.which("clang"):
            raise SystemExit("simscope: --frontend=clang but no clang "
                             "binary on PATH")
        if not compile_commands or not os.path.exists(compile_commands):
            raise SystemExit("simscope: clang frontend needs "
                             "--compile-commands pointing at "
                             "compile_commands.json")
        return ClangFrontend(repo_root, compile_commands,
                             verbose=verbose)
    return BuiltinFrontend(repo_root, verbose=verbose)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="simrace annotation-coverage analyzer")
    parser.add_argument("roots", nargs="*", default=list(DEFAULT_ROOTS),
                        help="files or directories relative to the repo "
                             f"root (default: {' '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             f"<repo>/{DEFAULT_ALLOWLIST})")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "builtin", "clang"))
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the clang "
                             "frontend (default: <repo>/build/...)")
    parser.add_argument("--xcheck", action="store_true",
                        help="cross-check static annotation reachability "
                             "against dynamic coverage dumps (S2)")
    parser.add_argument("--coverage", action="append", default=[],
                        help="coverage dump written by simrace under "
                             "DPDPU_SIM_RACE_COVERAGE; repeat or glob")
    parser.add_argument("--dump-facts", action="store_true",
                        help="print roots/fields/write attribution and "
                             "exit (debugging aid)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0

    if args.xcheck and not args.coverage:
        raise SystemExit("simscope: --xcheck needs at least one "
                         "--coverage file")

    compile_commands = args.compile_commands or os.path.join(
        args.repo_root, "build", "compile_commands.json")
    frontend = pick_frontend(args.frontend, args.repo_root,
                             compile_commands, verbose=False)

    facts = Facts()
    if not isinstance(frontend, BuiltinFrontend):
        # Field declarations (headers) are builtin-scanned even under
        # clang so both frontends agree on the field universe.
        BuiltinFrontend(args.repo_root).parse_tree(args.roots, facts)
    frontend.parse_tree(args.roots, facts)
    reports, reachable_annotations, covered = analyze(facts)

    if args.dump_facts:
        roots = [r for r in facts.regions if r.root]
        print(f"# {len(facts.regions)} regions, {len(roots)} callback "
              f"roots, {len(facts.fields)} fields")
        for key in sorted(reports):
            rep = reports[key]
            cov = all(c for (_, _, c, _) in rep.writes)
            print(f"{key[0]}::{key[1]}: {len(rep.roots)} roots, "
                  f"{len(rep.writes)} writes, "
                  f"{'covered' if cov else 'UNCOVERED'}")
        return 0

    # --- suppression policy (shared with simlint via lintcommon) ---------
    allowlist_path = args.allowlist or os.path.join(
        args.repo_root, DEFAULT_ALLOWLIST)
    allowlist = lintcommon.load_allowlist(allowlist_path, validate_rule)
    violations = []
    suppressing_keys = set()
    scanned = set()

    # Inline allows are anchored at the *finding* site (the field
    # declaration for S1, the annotation site for S2).
    inline_by_file = {}

    def inline_allows(path):
        if path not in inline_by_file:
            full = os.path.join(args.repo_root, path)
            errors = []
            try:
                with open(full) as f:
                    text = f.read()
            except OSError:
                text = ""
            allowed = lintcommon.inline_suppressions(
                text, path, errors, "simscope", "S[12]")
            inline_by_file[path] = (allowed, errors, set())
        return inline_by_file[path]

    def suppressed(path, rule, subject, line):
        allowed, _errors, used_inline = inline_allows(path)
        covered_lines = allowed.get(rule, {})
        if line in covered_lines:
            used_inline.add((rule, covered_lines[line]))
            return True
        for key in ((path, f"{rule}:{subject}"), (path, rule)):
            if key in allowlist:
                suppressing_keys.add(key)
                return True
        return False

    for field, subject, message in s1_findings(reports):
        scanned.add(field.path)
        if not suppressed(field.path, "S1", subject, field.line):
            violations.append(Violation(field.path, field.line, "S1",
                                        message))

    if args.xcheck:
        observed = load_observed(args.coverage)
        for ann, subject, message in s2_findings(
                reachable_annotations, facts.racy_names, observed):
            path = ann.path if ann else allowlist_path
            line = ann.line if ann else 1
            scanned.add(path)
            if not suppressed(path, "S2", subject, line):
                violations.append(Violation(path, line, "S2", message))
        extra = observed - {a.object_name
                            for a in reachable_annotations} - \
            facts.racy_names
        if extra:
            print(f"simscope: note: {len(extra)} dynamically-observed "
                  f"object(s) outside the static root-reachable set: "
                  f"{', '.join(sorted(extra))}")

    # Stale-suppression detection, same policy as simlint. Every parsed
    # file is examined — an allow comment in a file with no findings is
    # by definition suppressing nothing.
    for path in {r.path for r in facts.regions} | {
            f.path for f in facts.fields.values()}:
        inline_allows(path)
    for path, (allowed, errors, used_inline) in sorted(
            inline_by_file.items()):
        violations.extend(errors)
        violations.extend(lintcommon.stale_inline_allows(
            path, allowed, used_inline))
    # Every file is "scanned" for staleness purposes when it was parsed
    # at all: an entry for a parsed file whose finding no longer fires
    # is stale.
    parsed = {r.path for r in facts.regions} | {
        f.path for f in facts.fields.values()}
    judged = parsed if not args.xcheck else parsed | scanned
    # S2 entries can only suppress when --xcheck runs; don't judge them
    # stale in a plain run.
    judged_allowlist = {k: v for k, v in allowlist.items()
                        if args.xcheck or not k[1].startswith("S2")}
    violations.extend(lintcommon.stale_allowlist_entries(
        judged_allowlist, suppressing_keys, judged, args.repo_root,
        allowlist_path))

    for v in violations:
        print(v)
    if violations:
        print(f"simscope: {len(violations)} finding(s)")
        return 1
    nroots = sum(1 for r in facts.regions if r.root)
    print(f"simscope: OK ({nroots} callback contexts, "
          f"{len(reports)} shared fields, all covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
