#!/usr/bin/env python3
"""Seeded-violation self-tests for simlint.

Each rule gets at least one fixture that MUST fire and one that must
stay quiet — so a refactor of the linter that silently stops detecting
a class of nondeterminism fails CI, exactly like a broken assertion in
a C++ test. Run directly or via ctest (`simlint_selftest`).
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import simlint  # noqa: E402


def rules_of(violations):
    return sorted({v.rule for v in violations})


def lint(text, file_allow=None):
    return simlint.lint_text("fixture.cc", text, file_allow=file_allow)


class StripTest(unittest.TestCase):
    def test_comments_and_strings_are_blanked(self):
        text = (
            '// rand() in a comment\n'
            '/* std::random_device in a block\n   comment */\n'
            'const char* s = "rand() in a string";\n')
        self.assertEqual(lint(text), [])

    def test_line_structure_is_preserved(self):
        text = "int a; /* x\ny */ rand();\n"
        stripped = simlint.strip_comments_and_strings(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))
        violations = lint(text)
        self.assertEqual(rules_of(violations), ["R1"])
        self.assertEqual(violations[0].line, 2)


class R1Test(unittest.TestCase):
    SEEDED = [
        "auto t = std::chrono::system_clock::now();",
        "auto t = std::chrono::steady_clock::now();",
        "auto t = std::chrono::high_resolution_clock::now();",
        "int x = rand();",
        "srand(42);",
        "std::random_device rd;",
        "std::mt19937 gen(1);",
        "uint64_t s = time(nullptr);",
        "uint64_t s = time(NULL);",
        "struct timeval tv; gettimeofday(&tv, nullptr);",
        "clock_gettime(CLOCK_MONOTONIC, &ts);",
    ]

    def test_every_seeded_violation_fires(self):
        for snippet in self.SEEDED:
            with self.subTest(snippet=snippet):
                self.assertEqual(rules_of(lint(snippet)), ["R1"])

    def test_deterministic_lookalikes_stay_quiet(self):
        for snippet in [
            "uint64_t retransmit_time(TcpConfig c);",  # _time( is not time(
            "double x = sim_.now();",
            "common::Rng rng(seed);",
            "int frand();",  # suffix match must not fire
            "auto d = file.mtime();",
        ]:
            with self.subTest(snippet=snippet):
                self.assertEqual(lint(snippet), [])

    def test_inline_allow_with_reason_suppresses(self):
        text = ("// simlint:allow(R1): wall-clock path, tolerance-checked\n"
                "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(lint(text), [])

    def test_inline_allow_without_reason_is_itself_flagged(self):
        text = ("// simlint:allow(R1)\n"
                "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(rules_of(lint(text)), ["R1"])

    def test_file_allowlist_suppresses(self):
        text = "auto t = std::chrono::steady_clock::now();\n"
        self.assertEqual(lint(text, file_allow={"R1": "wall path"}), [])


class R2Test(unittest.TestCase):
    SEEDED = """
    void EmitStats() {
      std::unordered_map<int, int> counts_;
      for (const auto& kv : counts_) {
        rt::EmitJsonMetric("bench", "count", kv.second, "n");
      }
    }
    """

    def test_unordered_iteration_into_metrics_fires(self):
        self.assertEqual(rules_of(lint(self.SEEDED)), ["R2"])

    def test_log_emission_fires(self):
        text = """
        void Dump() {
          std::unordered_set<uint64_t> seen_;
          for (uint64_t fp : seen_) { DPDPU_LOG(Info) << fp; }
        }
        """
        self.assertEqual(rules_of(lint(text)), ["R2"])

    def test_event_scheduling_fires(self):
        text = """
        void Kick() {
          std::unordered_map<int, Node> peers_;
          for (auto& kv : peers_) {
            sim_->Schedule(10, [&] { kv.second.Poll(); });
          }
        }
        """
        self.assertEqual(rules_of(lint(text)), ["R2"])

    def test_sort_before_loop_is_the_escape_hatch(self):
        text = """
        void EmitStats() {
          std::unordered_map<int, int> counts_;
          std::vector<int> keys;
          for (const auto& kv : counts_) keys.push_back(kv.first);
          std::sort(keys.begin(), keys.end());
          for (int k : keys) {
            rt::EmitJsonMetric("bench", "count", counts_.at(k), "n");
          }
        }
        """
        # The collection loop precedes the sort() but feeds no emission
        # itself... the rule keys on sort-before-THIS-loop, so the first
        # loop still fires without an annotation. Canonical style is to
        # sort first, then both loops are clean:
        text_sorted_first = """
        void EmitStats() {
          std::unordered_map<int, int> counts_;
          std::vector<int> keys = SortedKeys(counts_);
          std::sort(keys.begin(), keys.end());
          for (int k : keys) {
            rt::EmitJsonMetric("bench", "count", counts_.at(k), "n");
          }
        }
        """
        self.assertEqual(lint(text_sorted_first), [])
        self.assertEqual(rules_of(lint(text)), ["R2"])

    def test_no_emission_no_violation(self):
        text = """
        int Total() {
          std::unordered_map<int, int> counts_;
          int total = 0;
          for (const auto& kv : counts_) total += kv.second;
          return total;
        }
        """
        self.assertEqual(lint(text), [])

    def test_ordered_map_iteration_is_fine(self):
        text = """
        void EmitStats() {
          std::map<int, int> counts_;
          for (const auto& kv : counts_) {
            rt::EmitJsonMetric("bench", "count", kv.second, "n");
          }
        }
        """
        self.assertEqual(lint(text), [])


class R3Test(unittest.TestCase):
    def test_pointer_keyed_containers_fire(self):
        for snippet in [
            "std::map<Connection*, int> by_conn_;",
            "std::set<const Node*> down_;",
            "std::unordered_map<Flow*, Stats> stats_;",
            "std::hash<Peer*> hasher;",
            "std::less<Request*> cmp;",
        ]:
            with self.subTest(snippet=snippet):
                self.assertEqual(rules_of(lint(snippet)), ["R3"])

    def test_value_keys_stay_quiet(self):
        for snippet in [
            "std::map<uint32_t, std::unique_ptr<TcpConnection>> conns_;",
            "std::map<NodeId, Endpoint> endpoints_;",
            "std::unordered_map<uint64_t, uint32_t> seen_;",
        ]:
            with self.subTest(snippet=snippet):
                self.assertEqual(lint(snippet), [])


class R4Test(unittest.TestCase):
    def test_void_launder_fires(self):
        self.assertEqual(rules_of(lint("(void)journal.Append(7, span);")),
                         ["R4"])
        self.assertEqual(rules_of(lint("(void)engine->Invoke(k, text);")),
                         ["R4"])

    def test_void_of_variable_is_fine(self):
        # (void)param; silences an unused-parameter warning, not a Status.
        self.assertEqual(lint("(void)unused_arg;"), [])

    def test_handled_status_is_fine(self):
        self.assertEqual(
            lint("Status s = journal.Append(7, span);\n"
                 "if (!s.ok()) return s;"), [])

    def test_nodiscard_markers_are_enforced(self):
        found = []
        simlint.check_r4_nodiscard_markers(simlint.REPO_ROOT, found.append)
        self.assertEqual(found, [],
                         "common Status/Result/Buffer lost [[nodiscard]]")


class R5Test(unittest.TestCase):
    def test_uninitialized_trivial_fields_fire(self):
        text = """
        struct RetryConfig {
          int attempts;
          double backoff = 2.0;
        };
        """
        violations = lint(text)
        self.assertEqual(rules_of(violations), ["R5"])
        self.assertIn("attempts", violations[0].message)

    def test_pointer_field_fires(self):
        text = "struct WireSpec {\n  Simulator* sim;\n};\n"
        self.assertEqual(rules_of(lint(text)), ["R5"])

    def test_initialized_struct_is_clean(self):
        text = """
        struct TcpConfig {
          uint32_t mss = 1448;
          SimTime rto_max = 60 * kSecond;
          bool nagle = false;
          double beta{0.7};
        };
        """
        self.assertEqual(lint(text), [])

    def test_member_functions_and_class_types_are_skipped(self):
        text = """
        struct ChunkerOptions {
          std::string label;
          size_t min_size = 2048;
          double Ratio() const {
            return unique == 0 ? 1.0 : double(total) / double(unique);
          }
          static constexpr int kMax = 7;
        };
        """
        self.assertEqual(lint(text), [])

    def test_non_config_structs_are_out_of_scope(self):
        # Plain structs may be aggregate-filled at every call site; the
        # rule only patrols the Config/Options/Spec naming convention.
        self.assertEqual(lint("struct Point { int x; int y; };"), [])


class R6Test(unittest.TestCase):
    def test_zero_delay_schedule_fires(self):
        self.assertEqual(
            rules_of(lint("sim_->Schedule(0, [&] { Poll(); });")), ["R6"])
        self.assertEqual(
            rules_of(lint("sim.Schedule(0, std::move(fn));")), ["R6"])

    def test_schedule_at_now_fires(self):
        self.assertEqual(
            rules_of(lint("sim->ScheduleAt(sim->now(), std::move(fn));")),
            ["R6"])

    def test_raw_this_capture_fires(self):
        self.assertEqual(
            rules_of(lint("sim_->Schedule(10, [this] { Poll(); });")),
            ["R6"])
        # Multi-line call with the capture on the continuation line.
        text = ("fleet_->simulator()->Schedule(\n"
                "    options_.retry_timeout, [this, op, generation] {\n"
                "      Retry(op);\n"
                "    });\n")
        self.assertEqual(rules_of(lint(text)), ["R6"])

    def test_lookalikes_stay_quiet(self):
        for snippet in [
            "sim_->Schedule(10, [heart] { heart->fn(); });",  # token capture
            "sim->ScheduleAt(sim->now() + delay, std::move(fn));",  # future
            "sim_->Schedule(delay, std::move(fn));",  # no lambda at all
            "Reschedule(0, fn);",  # free function, not the simulator API
        ]:
            with self.subTest(snippet=snippet):
                self.assertEqual(lint(snippet), [])

    def test_allow_with_reason_suppresses(self):
        text = ("// simlint:allow(R6): driver outlives the drained heap\n"
                "sim_->Schedule(10, [this] { Poll(); });\n")
        self.assertEqual(lint(text), [])

    def test_zero_delay_with_this_needs_one_allow_for_both(self):
        # Both R6 patterns fire on the same line; a single reasoned allow
        # covers them (they are the same rule).
        text = ("// simlint:allow(R6): alive-token-guarded deferral\n"
                "sim_->Schedule(0, [this, alive] { Fail(); });\n")
        self.assertEqual(lint(text), [])


class R7Test(unittest.TestCase):
    def test_draw_in_ref_captured_callback_fires(self):
        text = """
        void Run() {
          Pcg32 rng(11);
          sim.ScheduleAt(at, [&rng, &done] {
            uint64_t offset = rng.NextBounded(4000) * 8192;
          });
        }
        """
        violations = lint(text)
        self.assertEqual(rules_of(violations), ["R7"])
        self.assertIn("'rng'", violations[0].message)

    def test_default_ref_capture_fires(self):
        text = """
        void Run() {
          Pcg32 rng(3);
          issue = [&] {
            if (rng.NextDouble() < 0.5) Read();
          };
        }
        """
        self.assertEqual(rules_of(lint(text)), ["R7"])

    def test_generator_passed_to_zipf_fires(self):
        text = """
        void Run() {
          Pcg32 rng(13);
          ZipfGenerator zipf(4000, 0.99);
          issue = [&] {
            uint64_t key = zipf.Next(rng);
          };
        }
        """
        self.assertEqual(rules_of(lint(text)), ["R7"])

    def test_per_request_generator_inside_lambda_is_clean(self):
        text = """
        void Run() {
          issue = [&] {
            Pcg32 rng(sim::SplitMix64(seed ^ uint64_t(next++)));
            uint64_t key = rng.NextBounded(4000);
          };
        }
        """
        self.assertEqual(lint(text), [])

    def test_draw_at_schedule_time_is_clean(self):
        text = """
        void Run() {
          Pcg32 rng(11);
          for (uint64_t i = 0; i < total; ++i) {
            uint64_t offset = rng.NextBounded(4000) * 8192;
            sim.ScheduleAt(at, [offset] { Read(offset); });
          }
        }
        """
        self.assertEqual(lint(text), [])

    def test_copy_capture_is_clean(self):
        # A copy is an independent stream per closure: deterministic.
        for capture in ["rng", "&, rng", "rng = rng"]:
            text = f"""
            void Run() {{
              Pcg32 rng(5);
              cb = [{capture}]() mutable {{ rng.NextDouble(); }};
            }}
            """
            with self.subTest(capture=capture):
                self.assertEqual(lint(text), [])

    def test_subscript_is_not_a_lambda(self):
        text = """
        void Run() {
          Pcg32 rng(5);
          uint64_t x = table[idx] + rng.NextBounded(7);
        }
        """
        self.assertEqual(lint(text), [])

    def test_allow_with_reason_suppresses(self):
        text = """
        void Run() {
          Pcg32 rng(7);
          helper = [&](int n) {
            // simlint:allow(R7): synchronous helper, draws not scheduled
            uint64_t k = rng.NextBounded(100);
          };
        }
        """
        self.assertEqual(lint(text), [])


class StaleSuppressionTest(unittest.TestCase):
    def test_unused_inline_allow_is_flagged(self):
        text = ("// simlint:allow(R1): left behind after a refactor\n"
                "double x = sim_.now();\n")
        violations = lint(text)
        self.assertEqual(rules_of(violations), ["R1"])
        self.assertIn("stale inline", violations[0].message)

    def test_used_inline_allow_is_not_flagged(self):
        text = ("// simlint:allow(R1): wall path\n"
                "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(lint(text), [])

    def test_used_file_rules_are_reported_to_caller(self):
        used = set()
        simlint.lint_text(
            "fixture.cc", "auto t = std::chrono::steady_clock::now();\n",
            file_allow={"R1": "wall path", "R3": "unrelated"},
            used_file_rules=used)
        self.assertEqual(used, {"R1"})

    def _run_main_with_allowlist(self, entry, roots):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write(entry + "\n")
            path = f.name
        try:
            return simlint.main(["--allowlist", path] + roots)
        finally:
            os.unlink(path)

    def test_entry_for_missing_file_fails_even_in_subtree_runs(self):
        rc = self._run_main_with_allowlist(
            "src/no/such/file.cc R1 the file is long gone", ["src/sim"])
        self.assertEqual(rc, 1)

    def test_entry_for_scanned_file_without_the_violation_fails(self):
        rc = self._run_main_with_allowlist(
            "src/sim/simulator.h R3 never actually fired here", ["src/sim"])
        self.assertEqual(rc, 1)

    def test_entry_outside_scanned_roots_is_not_judged(self):
        # metrics.h R1 is the live repo waiver; a subtree run that never
        # scans it cannot tell whether it is stale and must not fail.
        rc = self._run_main_with_allowlist(
            "src/core/runtime/metrics.h R1 wall-clock measurement path",
            ["src/sim"])
        self.assertEqual(rc, 0)


class DriverTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        # The whole point of the exercise: the shipped tree has zero
        # violations, so any new one is a regression introduced by a PR.
        rc = simlint.main([])
        self.assertEqual(rc, 0)

    def test_list_rules(self):
        self.assertEqual(simlint.main(["--list-rules"]), 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
