#!/usr/bin/env python3
"""simlint — DPDPU's determinism & invariant linter.

Every figure this repo reproduces is gated by a bit-exact comparison of
simulated metrics against bench/BASELINE.json. That gate only catches
nondeterminism *after* it lands; simlint rejects the patterns that
introduce it (and a few correctness footguns around them) at review time.

Rules:
  R1  banned-nondeterminism  wall-clock reads / ambient randomness in
                             sim-visible code (std::chrono clocks, rand(),
                             srand(), std::random_device, mt19937, argless
                             time(), gettimeofday, clock_gettime, ...).
  R2  unordered-emission     iteration over an unordered_map/unordered_set
                             inside a function that emits metrics or logs
                             or schedules events, without sorting first.
                             Hash-table order is salted per-process: it
                             must never reach output or the event heap.
  R3  pointer-keyed-order    ordered containers / hashes / comparators
                             keyed on raw pointer values. Addresses vary
                             run to run (ASLR, allocator), so any ordering
                             derived from them is nondeterministic.
  R4  dropped-status         `(void)` launder of a Status/Result-returning
                             call, and regression of the [[nodiscard]]
                             markers on common::Status / common::Result /
                             common::Buffer that make the compiler flag
                             silently-dropped errors.
  R5  uninit-config-field    trivially-typed fields of *Config/*Options/
                             *Spec structs without a default member
                             initializer (indeterminate reads are both UB
                             and a nondeterminism source).
  R6  same-time-scheduling   zero-delay scheduling (`Schedule(0, ...)`,
                             `ScheduleAt(now(), ...)`) and raw-`this`
                             lambda captures in Schedule/ScheduleAt calls.
                             Same-time rescheduling widens the tie-break
                             surface simrace has to reason about, and a
                             raw `this` in a heap-held closure is a
                             use-after-free once the object dies before
                             its fire time. Both have legitimate uses —
                             every one needs a reasoned allow naming the
                             lifetime/ordering guarantee.
  R7  shared-rng-in-callback a Pcg32 captured by reference into a lambda
                             and drawn there. Callbacks fire in event
                             order, so a generator shared across request
                             streams keys its draw *sequence* to
                             same-timestamp tie-breaking — exactly the
                             drift --perturb and simex then report as a
                             schedule dependence. Derive a per-request
                             generator instead:
                             Pcg32(SplitMix64(seed ^ stream ^ counter)).

Suppression:
  * inline, same or previous line:  // simlint:allow(R1): <reason>
  * file-level, tools/simlint/allowlist.txt:  <path> <rule> <reason>
  Both require a non-empty reason; a bare suppression is itself an error,
  and so is a stale one: an inline allow that suppresses nothing, a
  file-level entry whose rule no longer fires in the (scanned) file, or a
  file-level entry whose file is gone from the tree all fail the lint.

Usage:
  python3 tools/simlint/simlint.py              # lint src/ bench/ examples/
  python3 tools/simlint/simlint.py src/netsub   # lint a subtree
  python3 tools/simlint/simlint.py --list-rules
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
import lintcommon  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DEFAULT_ROOTS = ("src", "bench", "examples")
DEFAULT_ALLOWLIST = os.path.join("tools", "simlint", "allowlist.txt")

RULES = {
    "R1": "banned nondeterminism (wall clocks, rand, random_device, ...)",
    "R2": "unordered-container iteration in a metric/log/schedule path",
    "R3": "ordering derived from raw pointer values",
    "R4": "dropped or laundered Status/Result (and [[nodiscard]] regression)",
    "R5": "uninitialized trivially-typed field in a Config/Options/Spec",
    "R6": "same-timestamp scheduling / raw-`this` capture in a scheduled "
          "callback",
    "R7": "shared Pcg32 drawn inside a by-reference lambda capture",
}


Violation = lintcommon.Violation


# ---------------------------------------------------------------------------
# Source preprocessing: blank out comments and string/char literals so rule
# regexes never match prose or quoted text. Line structure is preserved
# (every stripped character becomes a space; newlines survive).
# ---------------------------------------------------------------------------

strip_comments_and_strings = lintcommon.strip_comments_and_strings


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------

def inline_suppressions(original_text, path, errors):
    """Maps rule -> {covered line: line of the allow comment itself}."""
    return lintcommon.inline_suppressions(
        original_text, path, errors, "simlint", "R[1-7]")


def load_allowlist(path):
    """Returns {(relpath, rule): reason}; raises on malformed lines."""
    return lintcommon.load_allowlist(
        path, lambda rule: None if rule in RULES
        else f"unknown rule {rule!r}")


# ---------------------------------------------------------------------------
# Light structural parsing: function bodies and struct bodies.
# ---------------------------------------------------------------------------

match_brace = lintcommon.match_brace


FUNC_OPEN = re.compile(r"\)[\s\w:&<>,*\[\]]*?\{")


def iter_functions(stripped):
    """Yields (start_line, body) for every `...) ... {` function body."""
    pos = 0
    while True:
        m = FUNC_OPEN.search(stripped, pos)
        if not m:
            return
        open_idx = m.end() - 1
        end_idx = match_brace(stripped, open_idx)
        start_line = stripped.count("\n", 0, open_idx) + 1
        yield start_line, stripped[open_idx:end_idx], open_idx
        pos = open_idx + 1


# ---------------------------------------------------------------------------
# R1: banned nondeterminism.
# ---------------------------------------------------------------------------

R1_PATTERNS = [
    (re.compile(r"std::chrono::(system_clock|steady_clock|"
                r"high_resolution_clock)"),
     "std::chrono clock read"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937"),
     "std::mt19937 (use common::Rng: seeded, cross-platform)"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "argless time()"),
    (re.compile(r"\b(gettimeofday|clock_gettime|localtime|gmtime)\s*\("),
     "wall-clock syscall"),
]


def check_r1(path, stripped, report):
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for pattern, what in R1_PATTERNS:
            if pattern.search(line):
                report(Violation(
                    path, lineno, "R1",
                    f"{what}: nondeterministic in sim-visible code; use "
                    "sim::Simulator::now() / common::Rng (or allowlist a "
                    "wall-clock-only measurement path)"))


# ---------------------------------------------------------------------------
# R2: unordered iteration in emission paths.
# ---------------------------------------------------------------------------

UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>\s+(\w+)\s*(?:;|=|\{)")
EMISSION = re.compile(
    r"EmitJsonMetric|EmitWallClockMetrics|DPDPU_LOG|printf\s*\(|"
    r"std::cout|std::cerr|(?<![\w.])puts\s*\(|"
    r"(?:\.|->)Schedule(?:At)?\s*\(")
RANGE_FOR = re.compile(r"for\s*\(\s*[^;()]*?:\s*([^()]+?)\s*\)")
SORT_CALL = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")


def check_r2(path, stripped, report):
    unordered_vars = set(UNORDERED_DECL.findall(stripped))
    if not unordered_vars:
        return
    for start_line, body, _ in iter_functions(stripped):
        if not EMISSION.search(body):
            continue
        for m in RANGE_FOR.finditer(body):
            iterated = m.group(1)
            names = set(re.findall(r"\w+", iterated))
            hits = names & unordered_vars
            if not hits:
                continue
            # "Sorted first" escape hatch: a sort() anywhere earlier in the
            # same function body means the author already canonicalized.
            if SORT_CALL.search(body, 0, m.start()):
                continue
            lineno = start_line + body.count("\n", 0, m.start())
            report(Violation(
                path, lineno, "R2",
                f"iterating unordered container '{sorted(hits)[0]}' in a "
                "function that emits metrics/logs or schedules events; "
                "hash order is per-process — copy keys out and sort first"))


# ---------------------------------------------------------------------------
# R3: pointer-derived ordering.
# ---------------------------------------------------------------------------

R3_PATTERNS = [
    (re.compile(r"\b(?:std::)?(?:unordered_)?(?:map|set)\s*<\s*"
                r"(?:const\s+)?[\w:]+\s*\*"),
     "container keyed on a raw pointer"),
    (re.compile(r"std::hash\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*>"),
     "std::hash over a raw pointer"),
    (re.compile(r"std::less\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*>"),
     "std::less over a raw pointer"),
]


def check_r3(path, stripped, report):
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for pattern, what in R3_PATTERNS:
            if pattern.search(line):
                report(Violation(
                    path, lineno, "R3",
                    f"{what}: pointer values differ across runs (ASLR, "
                    "allocator); key on a stable id instead"))


# ---------------------------------------------------------------------------
# R4: dropped / laundered Status, and [[nodiscard]] regression.
# ---------------------------------------------------------------------------

VOID_LAUNDER = re.compile(r"\(\s*void\s*\)\s*[\w.>-]+\s*\(")


def check_r4(path, stripped, report):
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if VOID_LAUNDER.search(line):
            report(Violation(
                path, lineno, "R4",
                "(void)-launder of a function result defeats the "
                "[[nodiscard]] sweep; handle the Status or annotate "
                "with a reason"))


def check_r4_nodiscard_markers(repo_root, report):
    expectations = [
        (os.path.join("src", "common", "status.h"),
         re.compile(r"class\s+\[\[nodiscard\]\]\s+Status\b"),
         "common::Status must stay `class [[nodiscard]] Status`"),
        (os.path.join("src", "common", "result.h"),
         re.compile(r"class\s+\[\[nodiscard\]\]\s+Result\b"),
         "common::Result must stay `class [[nodiscard]] Result`"),
        (os.path.join("src", "common", "buffer.h"),
         re.compile(r"class\s+\[\[nodiscard\]\]\s+Buffer\b"),
         "common::Buffer must stay `class [[nodiscard]] Buffer`"),
    ]
    for rel, pattern, message in expectations:
        full = os.path.join(repo_root, rel)
        if not os.path.exists(full):
            continue
        with open(full) as f:
            if not pattern.search(f.read()):
                report(Violation(rel, 1, "R4", message))


# ---------------------------------------------------------------------------
# R5: uninitialized trivially-typed config fields.
# ---------------------------------------------------------------------------

CONFIG_STRUCT = re.compile(r"struct\s+(\w*(?:Config|Options|Spec))\s*\{")
TRIVIAL_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "float", "double",
    "size_t", "ssize_t", "uintptr_t", "intptr_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "SimTime", "NodeId", "MrKey", "FileId", "LogLevel",
}
MEMBER_DECL = re.compile(
    r"^\s*(?:const\s+|mutable\s+)*"
    r"([\w:]+(?:\s*<[^;]*>)?(?:\s*\*+)?)"   # type
    r"\s+(\w+)\s*(;|=|\{)")


def split_top_level_statements(body):
    """Yields (offset, stmt) for depth-1 statements of a brace body."""
    depth = 0
    start = 1  # skip opening brace
    i = 1
    while i < len(body):
        c = body[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth < 0:
                break
            if depth == 0:
                yield start, body[start:i + 1]
                start = i + 1
        elif c == ";" and depth == 0:
            yield start, body[start:i + 1]
            start = i + 1
        i += 1


def check_r5(path, stripped, report):
    for m in CONFIG_STRUCT.finditer(stripped):
        struct_name = m.group(1)
        open_idx = stripped.index("{", m.start())
        body = stripped[open_idx:match_brace(stripped, open_idx)]
        for offset, stmt in split_top_level_statements(body):
            if "(" in stmt or "static" in stmt or "constexpr" in stmt:
                continue  # member function / class constant
            dm = MEMBER_DECL.match(stmt.strip())
            if not dm:
                continue
            type_name, field, terminator = dm.groups()
            base = type_name.split("<")[0].split("::")[-1].rstrip("*&")
            is_pointer = "*" in type_name
            if terminator == ";" and (base in TRIVIAL_TYPES or is_pointer):
                lineno = (stripped.count("\n", 0, open_idx + offset) + 1)
                report(Violation(
                    path, lineno, "R5",
                    f"{struct_name}::{field} ({type_name.strip()}) has no "
                    "default initializer; an indeterminate config field is "
                    "UB and run-to-run noise — add `= ...` or `{}`"))


# ---------------------------------------------------------------------------
# R6: same-timestamp scheduling and raw-`this` captures in scheduled
# callbacks.
# ---------------------------------------------------------------------------

R6_ZERO_DELAY = re.compile(r"(?:\.|->)Schedule\s*\(\s*0\s*,")
# ScheduleAt(<expr ending in now()>, ...) — `now() + delay` does not match
# (the comma must directly follow the call), so only exact same-time
# scheduling trips this.
R6_AT_NOW = re.compile(r"(?:\.|->)ScheduleAt\s*\([^;(]*?\bnow\s*\(\s*\)\s*,")
R6_SCHED_CALL = re.compile(r"(?:\.|->)Schedule(?:At)?\s*\(")
R6_THIS_CAPTURE = re.compile(r"\[[^\]\[]*\bthis\b[^\]\[]*\]")


def check_r6(path, stripped, report):
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if R6_ZERO_DELAY.search(line) or R6_AT_NOW.search(line):
            report(Violation(
                path, lineno, "R6",
                "zero-delay scheduling runs the callback at the *same* "
                "timestamp: the new event lands in the current tie-break "
                "bucket, where ordering is policy-dependent — add a real "
                "latency, or allow with the reason the same-time chain is "
                "causally ordered (parent edges cover it)"))
    # Raw-`this` captured into a scheduled closure: the closure sits on
    # the event heap and cannot be canceled, so it outlives any lifetime
    # the compiler can see. Scan the window between `Schedule(` and the
    # lambda body's `{` (capture lists always precede it).
    for m in R6_SCHED_CALL.finditer(stripped):
        window = stripped[m.end():m.end() + 400]
        brace = window.find("{")
        semi = window.find(";")
        cut = min(x for x in (brace, semi, len(window)) if x >= 0)
        if R6_THIS_CAPTURE.search(window[:cut]):
            lineno = stripped.count("\n", 0, m.start()) + 1
            report(Violation(
                path, lineno, "R6",
                "raw `this` captured into a scheduled callback: events "
                "cannot be canceled, so this is a use-after-free if the "
                "object dies first — capture a shared/weak liveness token "
                "(see PeriodicTask::Heart), or allow with the lifetime "
                "guarantee"))


# ---------------------------------------------------------------------------
# R7: a shared Pcg32 drawn inside a by-reference lambda capture. The draw
# *sequence* of a generator shared across callbacks is keyed to the order
# those callbacks fire — i.e. to same-timestamp tie-breaking — which is
# exactly the drift --perturb and simex report as a schedule dependence.
# Copy captures are fine (each closure owns an independent stream), and so
# is a generator declared inside the lambda (the per-request
# Pcg32(SplitMix64(seed ^ stream ^ counter)) pattern).
# ---------------------------------------------------------------------------

R7_GENERATOR_DECL = re.compile(r"\bPcg32\s+(\w+)\s*[({=;]")
# A lambda introducer: `[` not preceded by an identifier/`)`/`]` (which
# would make it a subscript), then optional params / mutable / return
# type, then the body brace.
R7_LAMBDA = re.compile(
    r"(?<![\w)\]])\[([^\[\]]*)\]\s*(?:\([^()]*\))?\s*"
    r"(?:mutable\s*)?(?:noexcept\s*)?(?:->[^{;]*?)?\{")


def _captures_by_ref(capture, name):
    items = [item.strip() for item in capture.split(",") if item.strip()]
    if "&" + name in items:
        return True
    if "&" in items:
        # Default ref capture applies unless the name is an explicit
        # copy item (`rng` or an init-capture `rng = ...`).
        for item in items:
            if item == name or re.match(rf"{re.escape(name)}\s*=", item):
                return False
        return True
    return False


def check_r7(path, stripped, report):
    decls = {}  # name -> [decl offsets]
    for m in R7_GENERATOR_DECL.finditer(stripped):
        decls.setdefault(m.group(1), []).append(m.start())
    if not decls:
        return
    lambdas = []  # (capture list, body start, body end)
    for m in R7_LAMBDA.finditer(stripped):
        open_idx = m.end() - 1
        lambdas.append((m.group(1), open_idx, match_brace(stripped, open_idx)))
    if not lambdas:
        return
    names = "|".join(re.escape(n) for n in sorted(decls))
    # Draws: `rng.NextFoo(...)` and the pass-a-generator form
    # `zipf.Next(rng)` / `Shuffle(v, rng)`.
    draw = re.compile(
        rf"\b({names})\s*\.\s*Next\w*\s*\(|"
        rf"\.\s*Next\w*\s*\(\s*({names})\s*[,)]")
    seen = set()
    for m in draw.finditer(stripped):
        name = m.group(1) or m.group(2)
        pos = m.start()
        for capture, body_start, body_end in lambdas:
            if not body_start < pos < body_end:
                continue
            # Declared inside this lambda (per-request generator): clean.
            if any(body_start < d < body_end for d in decls[name]):
                continue
            if not _captures_by_ref(capture, name):
                continue
            lineno = stripped.count("\n", 0, pos) + 1
            if (lineno, name) in seen:
                break
            seen.add((lineno, name))
            report(Violation(
                path, lineno, "R7",
                f"Pcg32 '{name}' is drawn inside a by-reference lambda "
                "capture: callbacks fire in event order, so the draw "
                "sequence depends on same-timestamp tie-breaking — derive "
                "a per-request generator "
                "(Pcg32(SplitMix64(seed ^ stream ^ counter))) or draw "
                "before scheduling"))
            break


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

CHECKS = [check_r1, check_r2, check_r3, check_r4, check_r5, check_r6,
          check_r7]


def lint_text(path, text, file_allow=None, errors=None,
              used_file_rules=None):
    """Lints one translation unit; returns surviving violations.

    `file_allow` maps rule -> reason for file-level allowlist entries;
    rules that actually suppressed a violation are added to
    `used_file_rules` (when given) so the caller can flag stale entries.
    `errors`, when given, collects malformed-suppression diagnostics.
    Inline allows that suppress nothing are themselves violations.
    """
    file_allow = file_allow or {}
    errors = errors if errors is not None else []
    allowed_lines = inline_suppressions(text, path, errors)
    stripped = strip_comments_and_strings(text)
    raw = []
    for check in CHECKS:
        check(path, stripped, raw.append)
    survivors = []
    used_inline = set()  # (rule, line of the allow comment)
    for v in raw:
        covered = allowed_lines.get(v.rule, {})
        if v.line in covered:
            used_inline.add((v.rule, covered[v.line]))
            continue
        if v.rule in file_allow:
            if used_file_rules is not None:
                used_file_rules.add(v.rule)
            continue
        survivors.append(v)
    survivors.extend(
        lintcommon.stale_inline_allows(path, allowed_lines, used_inline))
    return survivors + errors


collect_files = lintcommon.collect_files


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="DPDPU determinism & invariant linter")
    parser.add_argument("roots", nargs="*", default=list(DEFAULT_ROOTS),
                        help="files or directories relative to the repo "
                             f"root (default: {' '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             f"<repo>/{DEFAULT_ALLOWLIST})")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0

    allowlist_path = args.allowlist or os.path.join(
        args.repo_root, DEFAULT_ALLOWLIST)
    allowlist = load_allowlist(allowlist_path)

    violations = []
    scanned = set()
    suppressing_keys = set()  # entries that suppressed >= 1 violation
    for full in collect_files(args.repo_root, args.roots):
        rel = os.path.relpath(full, args.repo_root)
        scanned.add(rel)
        file_allow = {}
        for (entry_path, rule), reason in allowlist.items():
            if entry_path == rel:
                file_allow[rule] = reason
        used_rules = set()
        with open(full) as f:
            text = f.read()
        violations.extend(
            lint_text(rel, text, file_allow, used_file_rules=used_rules))
        suppressing_keys.update((rel, rule) for rule in used_rules)

    violations.extend(lintcommon.stale_allowlist_entries(
        allowlist, suppressing_keys, scanned, args.repo_root,
        allowlist_path))

    for v in violations:
        print(v)
    if violations:
        print(f"simlint: {len(violations)} violation(s)")
        return 1
    print("simlint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
