"""lintcommon — shared infrastructure for DPDPU's source analyzers.

simlint (rule-pattern linting) and simscope (annotation-coverage
analysis) share the same front matter: a C++-aware comment/string
stripper that preserves line structure, brace matching for structural
parsing, and — most importantly — one suppression *policy*:

  * inline, same or previous line:   // <tool>:allow(<rule>): <reason>
  * file-level allowlist entries:    <path> <rule> <reason>

Both forms require a non-empty reason, and both are checked for
staleness: an inline allow that suppresses nothing, a file-level entry
whose file left the tree, or an entry whose rule no longer fires in the
scanned file are themselves violations. A waiver that rots into a
blanket exemption is worse than no waiver, so the policy lives here,
in one place, and every tool inherits it.
"""

import os
import re


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


# ---------------------------------------------------------------------------
# Source preprocessing: blank out comments and string/char literals so
# analysis regexes never match prose or quoted text. Line structure is
# preserved (every stripped character becomes a space; newlines survive).
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                state = STRING
                out.append(" ")
                i += 1
            elif c == "'":
                state = CHAR
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # STRING or CHAR
            quote = '"' if state == STRING else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def match_brace(text, open_idx):
    """Index just past the brace matching text[open_idx] ('{'), or len."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------------------
# Inline suppressions.
# ---------------------------------------------------------------------------

def inline_allow_pattern(tool, rule_pattern):
    """The `// <tool>:allow(<rule>): <reason>` trailer for one tool."""
    return re.compile(
        rf"{re.escape(tool)}:\s*allow\(({rule_pattern})\)"
        r"\s*(?::\s*(.*?))?\s*$")


def inline_suppressions(original_text, path, errors, tool, rule_pattern):
    """Maps rule -> {covered line: line of the allow comment itself}.

    A suppression covers its own line and the next one, so it can sit
    above the flagged statement or trail it. Allows without a reason are
    appended to `errors` as violations instead of taking effect.
    """
    pattern = inline_allow_pattern(tool, rule_pattern)
    allowed = {}
    for lineno, line in enumerate(original_text.splitlines(), start=1):
        m = pattern.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if not reason:
            errors.append(Violation(
                path, lineno, rule,
                f"{tool}:allow without a reason (write "
                f"`// {tool}:allow({rule}): why`)"))
            continue
        covered = allowed.setdefault(rule, {})
        covered[lineno] = lineno
        covered.setdefault(lineno + 1, lineno)
    return allowed


def stale_inline_allows(path, allowed_lines, used_inline):
    """Violations for allow comments that suppressed nothing.

    `used_inline` is the set of (rule, line of the allow comment) pairs
    that suppressed at least one finding. An allow that suppresses
    nothing is a waiver rotting in place — either the code was fixed
    (delete the comment) or the comment is on the wrong line (move it).
    """
    stale = []
    for rule, covered in sorted(allowed_lines.items()):
        for comment_line in sorted(set(covered.values())):
            if (rule, comment_line) not in used_inline:
                stale.append(Violation(
                    path, comment_line, rule,
                    f"stale inline allow({rule}): it suppresses nothing "
                    "on this or the next line; remove it"))
    return stale


# ---------------------------------------------------------------------------
# File-level allowlists.
# ---------------------------------------------------------------------------

def load_allowlist(path, validate_rule):
    """Returns {(relpath, rule): reason}; raises SystemExit on bad lines.

    Entries are `<path> <rule> <reason>`; `validate_rule(rule)` returns
    an error string for an unknown rule, or None to accept it.
    """
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise SystemExit(
                    f"{path}:{lineno}: allowlist entries are "
                    f"`<path> <rule> <reason>`; got: {line!r}")
            entry_path, rule, reason = parts
            problem = validate_rule(rule)
            if problem:
                raise SystemExit(f"{path}:{lineno}: {problem}")
            entries[(entry_path, rule)] = reason
    return entries


def stale_allowlist_entries(allowlist, suppressing_keys, scanned,
                            repo_root, allowlist_path):
    """Violations for allowlist entries that no longer suppress anything.

    An entry is stale when its file left the tree, or when the file was
    scanned and the waived rule no longer fires in it. A file that
    exists but sits outside this run's roots (subtree scan) is not
    judged — only the full-tree run can prove an entry useless.
    """
    stale = []
    for key in sorted(set(allowlist) - set(suppressing_keys)):
        entry_path, rule = key
        if not os.path.exists(os.path.join(repo_root, entry_path)):
            stale.append(Violation(
                allowlist_path, 1, rule,
                f"stale allowlist entry for {entry_path} (file no longer "
                "exists); remove it"))
        elif entry_path in scanned:
            stale.append(Violation(
                allowlist_path, 1, rule,
                f"stale allowlist entry for {entry_path} ({rule} no "
                "longer fires there); remove it"))
    return stale


# ---------------------------------------------------------------------------
# Tree walking.
# ---------------------------------------------------------------------------

CXX_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")


def collect_files(repo_root, roots, suffixes=CXX_SUFFIXES):
    files = []
    for root in roots:
        base = os.path.join(repo_root, root)
        if os.path.isfile(base):
            files.append(base)
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(suffixes):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)
