// simex CLI: systematic schedule & fault exploration for the DPDPU
// simulator. Wraps sim::Explorer around a set of built-in scenario
// targets, each pairing a workload with its invariant set:
//
//   minitcp         two-node MiniTCP bulk transfer with frame-drop
//                   placement choice points; invariants: exact payload
//                   delivery despite any drop placement, race-free.
//   fleet           small fleet (consistency layer on) under a mixed
//                   read/write workload with node fail/recover timing
//                   choice points; invariants: every op completes, no
//                   stale reads, race-free, metric-equality vs the
//                   reference schedule.
//   pagecache-race  the PR-5 page-cache tie-order bug with its fix
//                   (FileService reactor serialization) reverted
//                   in-harness; MUST fail — used as the CI self-test
//                   that the explorer still finds real bugs.
//
// Exit codes: 0 = explored clean, 1 = invariant violation found
// (minimized trace on stdout), 2 = usage error. The trailing
// `simex-json:` line is machine-readable for scripts/check_bench.py.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/simex_faults.h"
#include "cluster/simex_scenarios.h"
#include "cluster/workload.h"
#include "fssub/page_cache.h"
#include "hw/machine.h"
#include "kern/textgen.h"
#include "netsub/minitcp.h"
#include "netsub/network.h"
#include "sim/simex.h"

namespace dpdpu {
namespace {

using sim::ExploreOptions;
using sim::Explorer;
using sim::Plan;
using sim::Scenario;
using sim::ScenarioResult;
using sim::Simulator;

// --------------------------------------------------------------------------
// Targets.
// --------------------------------------------------------------------------

ScenarioResult MiniTcpScenario(Simulator& sim) {
  auto nic_a = std::make_unique<hw::NicPort>(&sim, "a",
                                             hw::NicSpec{100e9, 2000, 4096});
  auto nic_b = std::make_unique<hw::NicPort>(&sim, "b",
                                             hw::NicSpec{100e9, 2000, 4096});
  netsub::Network net(&sim);
  netsub::TcpStack stack_a(&sim, &net, 1);
  netsub::TcpStack stack_b(&sim, &net, 2);
  net.Attach(1, nic_a.get(),
             [&](netsub::Packet p) { stack_a.OnPacket(std::move(p)); });
  net.Attach(2, nic_b.get(),
             [&](netsub::Packet p) { stack_b.OnPacket(std::move(p)); });
  // Up to three of the first TCP frames may be dropped, one choice
  // point each — covering SYN, first data segment, and ack loss.
  net.ExploreDrops(3);

  Buffer sent = kern::GenerateText(64 << 10, {});
  Buffer received;
  netsub::TcpConnection* server = nullptr;
  stack_b.Listen(80, [&](netsub::TcpConnection* c) {
    server = c;
    c->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
  });
  netsub::TcpConnection* client = stack_a.Connect(2, 80);
  client->Send(sent.span());
  sim.Run();

  ScenarioResult r;
  if (received.size() != sent.size() || !(received == sent)) {
    r.ok = false;
    r.failure = "payload corrupted or lost: received " +
                std::to_string(received.size()) + " of " +
                std::to_string(sent.size()) + " bytes";
  }
  // Retransmission count varies with drop placement, so it is not a
  // metric; delivered payload is the invariant.
  r.metrics = "delivered_bytes=" + std::to_string(received.size()) + "\n";
  return r;
}

ScenarioResult FleetScenario(Simulator& sim) {
  using namespace cluster;
  FleetSpec spec;
  spec.storage_servers = 2;
  spec.clients = 2;
  spec.routing.replication = 2;
  spec.consistency.enabled = true;
  spec.shard_bytes = 1 << 20;
  spec.storage_template.fs_device_blocks = 2048;
  spec.client_template.fs_device_blocks = 1024;
  Fleet fleet(&sim, spec);

  WorkloadOptions options;
  options.keyspace = 128;
  options.read_fraction = 0.75;
  options.retry_timeout = 2 * sim::kMillisecond;
  std::vector<std::unique_ptr<FleetClient>> owned;
  std::vector<FleetClient*> clients;
  for (uint32_t i = 0; i < fleet.clients(); ++i) {
    owned.push_back(std::make_unique<FleetClient>(&fleet, i, options));
    clients.push_back(owned.back().get());
  }

  // Node 1 may fail gracefully at 1 ms or 3 ms into the run, and may
  // recover 2 ms later — five fault branches (incl. no-fault) whose
  // stale-read/lost-ack behavior the explorer checks one by one.
  FaultSchedule faults(&fleet);
  FaultScheduleOptions fault;
  fault.node = 1;
  fault.fail_times = {1 * sim::kMillisecond, 3 * sim::kMillisecond};
  fault.recover_after = {2 * sim::kMillisecond};
  faults.Arm(fault);

  ClosedLoopDriver driver(clients, 2, 48);
  driver.Start();
  sim.Run();

  FleetWorkloadSummary summary = Summarize(clients);
  ScenarioResult r;
  if (summary.totals.completed != summary.totals.issued) {
    r.ok = false;
    r.failure = "lost acks: " + std::to_string(summary.totals.issued) +
                " issued, " + std::to_string(summary.totals.completed) +
                " completed, " + std::to_string(summary.totals.failed) +
                " failed";
  } else if (summary.totals.stale_reads != 0) {
    r.ok = false;
    r.failure = "stale reads: " + std::to_string(summary.totals.stale_reads);
  }
  r.metrics = "issued=" + std::to_string(summary.totals.issued) +
              "\ncompleted=" + std::to_string(summary.totals.completed) +
              "\nfailed=" + std::to_string(summary.totals.failed) +
              "\nstale_reads=" + std::to_string(summary.totals.stale_reads) +
              "\n";
  return r;
}

// The PR-5 bug shape with its fix reverted in-harness: the FileService
// now serializes every async completion on one reactor HbChain, so a
// page-cache Get and Put can no longer collide at one timestamp from
// causally-unordered events. Driving the cache directly — without the
// chain — recreates the pre-fix schedule and simex must find the race.
ScenarioResult PageCacheRaceScenario(Simulator& sim) {
  auto cache = std::make_shared<fssub::PageCache>(1 << 20);
  auto hits = std::make_shared<int>(0);
  sim.Schedule(100, [cache, hits] {
    if (cache->Get(fssub::PageKey{1, 0}) != nullptr) ++*hits;
  });
  sim.Schedule(100,
               [cache] { cache->Put(fssub::PageKey{1, 0}, Buffer(4096)); });
  sim.Run();
  ScenarioResult r;
  r.metrics = "hits=" + std::to_string(*hits) + "\n";
  return r;
}

struct Target {
  const char* name;
  const char* description;
  Scenario (*make)();
};

const Target kTargets[] = {
    {"minitcp", "MiniTCP bulk transfer under frame-drop placement",
     [] { return Scenario(MiniTcpScenario); }},
    {"fleet", "small fleet under node fail/recover timing",
     [] { return Scenario(FleetScenario); }},
    {"pagecache-race", "PR-5 page-cache tie-order bug, fix reverted (MUST fail)",
     [] { return Scenario(PageCacheRaceScenario); }},
};

// Built-ins plus the cluster consistency registry
// (cluster/simex_scenarios.h) — one flat namespace for --target.
std::vector<Target> AllTargets() {
  std::vector<Target> targets(std::begin(kTargets), std::end(kTargets));
  for (const cluster::ClusterScenarioInfo& info :
       cluster::ClusterScenarios()) {
    targets.push_back(Target{info.name, info.description, info.make});
  }
  return targets;
}

// --------------------------------------------------------------------------
// Driver.
// --------------------------------------------------------------------------

void Usage() {
  std::fprintf(
      stderr,
      "usage: simex --target=NAME [--budget=N] [--depth=N] [--token=TOK]\n"
      "             [--no-race-invariant] [--no-metric-invariant]\n"
      "             [--no-minimize] [--list]\n");
}

int Main(int argc, char** argv) {
  std::string target_name;
  std::string token;
  ExploreOptions options;
  options.max_schedules = 64;
  bool minimize = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--target=")) {
      target_name = v;
    } else if (const char* v = value("--budget=")) {
      options.max_schedules = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--depth=")) {
      options.max_branch_depth = uint32_t(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--token=")) {
      token = v;
    } else if (arg == "--no-race-invariant") {
      options.race_is_failure = false;
    } else if (arg == "--no-metric-invariant") {
      options.check_metrics = false;
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (arg == "--list") {
      for (const Target& t : AllTargets()) {
        std::printf("%-24s %s\n", t.name, t.description);
      }
      return 0;
    } else {
      Usage();
      return 2;
    }
  }

  const std::vector<Target> targets = AllTargets();
  const Target* target = nullptr;
  for (const Target& t : targets) {
    if (target_name == t.name) target = &t;
  }
  if (target == nullptr) {
    Usage();
    return 2;
  }

  Explorer explorer(target->make(), options);

  if (!token.empty()) {
    Plan plan;
    if (!sim::TokenToPlan(token, &plan)) {
      std::fprintf(stderr, "simex: malformed token '%s'\n", token.c_str());
      return 2;
    }
    sim::ExploreFailure replay;
    replay.plan = plan;
    replay.token = sim::PlanToToken(plan);
    sim::RunRecord rec = explorer.Run(plan);
    replay.kind = rec.result.ok ? "replay" : "invariant";
    replay.detail = rec.result.ok ? "schedule replayed" : rec.result.failure;
    std::fputs(explorer.FormatTrace(replay).c_str(), stdout);
    std::printf("simex: metrics:\n%s", rec.result.metrics.c_str());
    return rec.result.ok && rec.race_count == 0 ? 0 : 1;
  }

  bool clean = explorer.Explore();
  const sim::ExploreStats& stats = explorer.stats();
  std::printf("simex: target=%s budget=%llu\n", target->name,
              (unsigned long long)options.max_schedules);
  std::printf(
      "simex: schedules=%llu tie_points=%llu choice_points=%llu "
      "tie_branches=%llu fault_branches=%llu deduped=%llu\n",
      (unsigned long long)stats.schedules_run,
      (unsigned long long)stats.tie_points,
      (unsigned long long)stats.choice_points,
      (unsigned long long)stats.tie_branches,
      (unsigned long long)stats.fault_branches,
      (unsigned long long)stats.deduped);
  std::printf("simex: naive ~1e%.1f schedules, pruning factor ~%.3gx%s\n",
              stats.naive_log10, stats.pruning_factor,
              stats.naive_log10 - std::log10(double(std::max<uint64_t>(
                                      1, stats.schedules_run))) >
                      15.0
                  ? " (capped)"
                  : "");

  for (const sim::ExploreFailure& found : explorer.failures()) {
    sim::ExploreFailure failure = found;
    if (minimize) explorer.Minimize(&failure);
    std::fputs(explorer.FormatTrace(failure).c_str(), stdout);
  }
  std::printf(
      "simex-json: {\"target\": \"%s\", \"schedules\": %llu, "
      "\"naive_log10\": %.2f, \"pruning_factor\": %.6g, "
      "\"failures\": %zu}\n",
      target->name, (unsigned long long)stats.schedules_run,
      stats.naive_log10, stats.pruning_factor, explorer.failures().size());
  std::printf("simex: %s\n", clean ? "PASS" : "FAIL");
  return clean ? 0 : 1;
}

}  // namespace
}  // namespace dpdpu

int main(int argc, char** argv) { return dpdpu::Main(argc, argv); }
